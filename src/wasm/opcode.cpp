#include "wasm/opcode.h"

#include "wasm/types.h"

namespace wb::wasm {

OpClass op_class(Opcode op) {
  const uint8_t b = static_cast<uint8_t>(op);
  switch (op) {
    case Opcode::I32Const:
    case Opcode::I64Const:
    case Opcode::F32Const:
    case Opcode::F64Const:
      return OpClass::Const;
    case Opcode::LocalGet:
    case Opcode::LocalSet:
    case Opcode::LocalTee:
      return OpClass::LocalVar;
    case Opcode::GlobalGet:
    case Opcode::GlobalSet:
      return OpClass::GlobalVar;
    case Opcode::I32Mul:
    case Opcode::I64Mul:
      return OpClass::IntMul;
    case Opcode::I32DivS:
    case Opcode::I32DivU:
    case Opcode::I32RemS:
    case Opcode::I32RemU:
    case Opcode::I64DivS:
    case Opcode::I64DivU:
    case Opcode::I64RemS:
    case Opcode::I64RemU:
      return OpClass::IntDiv;
    case Opcode::F32Div:
    case Opcode::F32Sqrt:
    case Opcode::F64Div:
    case Opcode::F64Sqrt:
      return OpClass::FloatDiv;
    case Opcode::Call:
    case Opcode::CallIndirect:
      return OpClass::Call;
    case Opcode::MemoryGrow:
      return OpClass::MemoryGrow;
    case Opcode::MemorySize:
      return OpClass::Misc;
    case Opcode::Unreachable:
    case Opcode::Nop:
      return OpClass::Misc;
    default:
      break;
  }
  if (b >= 0x28 && b <= 0x2f) return OpClass::Load;
  if (b >= 0x36 && b <= 0x3b) return OpClass::Store;
  if (b >= 0x45 && b <= 0x5a) return OpClass::IntArith;   // int compares
  if (b >= 0x5b && b <= 0x66) return OpClass::FloatArith; // float compares
  if (b >= 0x67 && b <= 0x8a) return OpClass::IntArith;   // int alu (mul/div handled)
  if (b >= 0x8b && b <= 0xa6) return OpClass::FloatArith; // float alu (div/sqrt handled)
  if (b >= 0xa7 && b <= 0xbf) return OpClass::Convert;
  // Blocks, branches, select, drop, end, else, return.
  return OpClass::Branch;
}

ArithCat arith_cat(Opcode op) {
  switch (op) {
    case Opcode::I32Add:
    case Opcode::I32Sub:
    case Opcode::I64Add:
    case Opcode::I64Sub:
    case Opcode::F32Add:
    case Opcode::F32Sub:
    case Opcode::F64Add:
    case Opcode::F64Sub:
      return ArithCat::Add;
    case Opcode::I32Mul:
    case Opcode::I64Mul:
    case Opcode::F32Mul:
    case Opcode::F64Mul:
      return ArithCat::Mul;
    case Opcode::I32DivS:
    case Opcode::I32DivU:
    case Opcode::I64DivS:
    case Opcode::I64DivU:
    case Opcode::F32Div:
    case Opcode::F64Div:
      return ArithCat::Div;
    case Opcode::I32RemS:
    case Opcode::I32RemU:
    case Opcode::I64RemS:
    case Opcode::I64RemU:
      return ArithCat::Rem;
    case Opcode::I32Shl:
    case Opcode::I32ShrS:
    case Opcode::I32ShrU:
    case Opcode::I32Rotl:
    case Opcode::I32Rotr:
    case Opcode::I64Shl:
    case Opcode::I64ShrS:
    case Opcode::I64ShrU:
    case Opcode::I64Rotl:
    case Opcode::I64Rotr:
      return ArithCat::Shift;
    case Opcode::I32And:
    case Opcode::I64And:
      return ArithCat::And;
    case Opcode::I32Or:
    case Opcode::I32Xor:
    case Opcode::I64Or:
    case Opcode::I64Xor:
      return ArithCat::Or;
    default:
      return ArithCat::None;
  }
}

const char* to_string(Opcode op) {
  switch (op) {
    case Opcode::Unreachable: return "unreachable";
    case Opcode::Nop: return "nop";
    case Opcode::Block: return "block";
    case Opcode::Loop: return "loop";
    case Opcode::If: return "if";
    case Opcode::Else: return "else";
    case Opcode::End: return "end";
    case Opcode::Br: return "br";
    case Opcode::BrIf: return "br_if";
    case Opcode::BrTable: return "br_table";
    case Opcode::Return: return "return";
    case Opcode::Call: return "call";
    case Opcode::CallIndirect: return "call_indirect";
    case Opcode::Drop: return "drop";
    case Opcode::Select: return "select";
    case Opcode::LocalGet: return "local.get";
    case Opcode::LocalSet: return "local.set";
    case Opcode::LocalTee: return "local.tee";
    case Opcode::GlobalGet: return "global.get";
    case Opcode::GlobalSet: return "global.set";
    case Opcode::I32Load: return "i32.load";
    case Opcode::I64Load: return "i64.load";
    case Opcode::F32Load: return "f32.load";
    case Opcode::F64Load: return "f64.load";
    case Opcode::I32Load8S: return "i32.load8_s";
    case Opcode::I32Load8U: return "i32.load8_u";
    case Opcode::I32Load16S: return "i32.load16_s";
    case Opcode::I32Load16U: return "i32.load16_u";
    case Opcode::I32Store: return "i32.store";
    case Opcode::I64Store: return "i64.store";
    case Opcode::F32Store: return "f32.store";
    case Opcode::F64Store: return "f64.store";
    case Opcode::I32Store8: return "i32.store8";
    case Opcode::I32Store16: return "i32.store16";
    case Opcode::MemorySize: return "memory.size";
    case Opcode::MemoryGrow: return "memory.grow";
    case Opcode::I32Const: return "i32.const";
    case Opcode::I64Const: return "i64.const";
    case Opcode::F32Const: return "f32.const";
    case Opcode::F64Const: return "f64.const";
    case Opcode::I32Eqz: return "i32.eqz";
    case Opcode::I32Eq: return "i32.eq";
    case Opcode::I32Ne: return "i32.ne";
    case Opcode::I32LtS: return "i32.lt_s";
    case Opcode::I32LtU: return "i32.lt_u";
    case Opcode::I32GtS: return "i32.gt_s";
    case Opcode::I32GtU: return "i32.gt_u";
    case Opcode::I32LeS: return "i32.le_s";
    case Opcode::I32LeU: return "i32.le_u";
    case Opcode::I32GeS: return "i32.ge_s";
    case Opcode::I32GeU: return "i32.ge_u";
    case Opcode::I64Eqz: return "i64.eqz";
    case Opcode::I64Eq: return "i64.eq";
    case Opcode::I64Ne: return "i64.ne";
    case Opcode::I64LtS: return "i64.lt_s";
    case Opcode::I64LtU: return "i64.lt_u";
    case Opcode::I64GtS: return "i64.gt_s";
    case Opcode::I64GtU: return "i64.gt_u";
    case Opcode::I64LeS: return "i64.le_s";
    case Opcode::I64LeU: return "i64.le_u";
    case Opcode::I64GeS: return "i64.ge_s";
    case Opcode::I64GeU: return "i64.ge_u";
    case Opcode::F32Eq: return "f32.eq";
    case Opcode::F32Ne: return "f32.ne";
    case Opcode::F32Lt: return "f32.lt";
    case Opcode::F32Gt: return "f32.gt";
    case Opcode::F32Le: return "f32.le";
    case Opcode::F32Ge: return "f32.ge";
    case Opcode::F64Eq: return "f64.eq";
    case Opcode::F64Ne: return "f64.ne";
    case Opcode::F64Lt: return "f64.lt";
    case Opcode::F64Gt: return "f64.gt";
    case Opcode::F64Le: return "f64.le";
    case Opcode::F64Ge: return "f64.ge";
    case Opcode::I32Clz: return "i32.clz";
    case Opcode::I32Ctz: return "i32.ctz";
    case Opcode::I32Popcnt: return "i32.popcnt";
    case Opcode::I32Add: return "i32.add";
    case Opcode::I32Sub: return "i32.sub";
    case Opcode::I32Mul: return "i32.mul";
    case Opcode::I32DivS: return "i32.div_s";
    case Opcode::I32DivU: return "i32.div_u";
    case Opcode::I32RemS: return "i32.rem_s";
    case Opcode::I32RemU: return "i32.rem_u";
    case Opcode::I32And: return "i32.and";
    case Opcode::I32Or: return "i32.or";
    case Opcode::I32Xor: return "i32.xor";
    case Opcode::I32Shl: return "i32.shl";
    case Opcode::I32ShrS: return "i32.shr_s";
    case Opcode::I32ShrU: return "i32.shr_u";
    case Opcode::I32Rotl: return "i32.rotl";
    case Opcode::I32Rotr: return "i32.rotr";
    case Opcode::I64Clz: return "i64.clz";
    case Opcode::I64Ctz: return "i64.ctz";
    case Opcode::I64Popcnt: return "i64.popcnt";
    case Opcode::I64Add: return "i64.add";
    case Opcode::I64Sub: return "i64.sub";
    case Opcode::I64Mul: return "i64.mul";
    case Opcode::I64DivS: return "i64.div_s";
    case Opcode::I64DivU: return "i64.div_u";
    case Opcode::I64RemS: return "i64.rem_s";
    case Opcode::I64RemU: return "i64.rem_u";
    case Opcode::I64And: return "i64.and";
    case Opcode::I64Or: return "i64.or";
    case Opcode::I64Xor: return "i64.xor";
    case Opcode::I64Shl: return "i64.shl";
    case Opcode::I64ShrS: return "i64.shr_s";
    case Opcode::I64ShrU: return "i64.shr_u";
    case Opcode::I64Rotl: return "i64.rotl";
    case Opcode::I64Rotr: return "i64.rotr";
    case Opcode::F32Abs: return "f32.abs";
    case Opcode::F32Neg: return "f32.neg";
    case Opcode::F32Ceil: return "f32.ceil";
    case Opcode::F32Floor: return "f32.floor";
    case Opcode::F32Trunc: return "f32.trunc";
    case Opcode::F32Nearest: return "f32.nearest";
    case Opcode::F32Sqrt: return "f32.sqrt";
    case Opcode::F32Add: return "f32.add";
    case Opcode::F32Sub: return "f32.sub";
    case Opcode::F32Mul: return "f32.mul";
    case Opcode::F32Div: return "f32.div";
    case Opcode::F32Min: return "f32.min";
    case Opcode::F32Max: return "f32.max";
    case Opcode::F32Copysign: return "f32.copysign";
    case Opcode::F64Abs: return "f64.abs";
    case Opcode::F64Neg: return "f64.neg";
    case Opcode::F64Ceil: return "f64.ceil";
    case Opcode::F64Floor: return "f64.floor";
    case Opcode::F64Trunc: return "f64.trunc";
    case Opcode::F64Nearest: return "f64.nearest";
    case Opcode::F64Sqrt: return "f64.sqrt";
    case Opcode::F64Add: return "f64.add";
    case Opcode::F64Sub: return "f64.sub";
    case Opcode::F64Mul: return "f64.mul";
    case Opcode::F64Div: return "f64.div";
    case Opcode::F64Min: return "f64.min";
    case Opcode::F64Max: return "f64.max";
    case Opcode::F64Copysign: return "f64.copysign";
    case Opcode::I32WrapI64: return "i32.wrap_i64";
    case Opcode::I32TruncF32S: return "i32.trunc_f32_s";
    case Opcode::I32TruncF32U: return "i32.trunc_f32_u";
    case Opcode::I32TruncF64S: return "i32.trunc_f64_s";
    case Opcode::I32TruncF64U: return "i32.trunc_f64_u";
    case Opcode::I64ExtendI32S: return "i64.extend_i32_s";
    case Opcode::I64ExtendI32U: return "i64.extend_i32_u";
    case Opcode::I64TruncF32S: return "i64.trunc_f32_s";
    case Opcode::I64TruncF32U: return "i64.trunc_f32_u";
    case Opcode::I64TruncF64S: return "i64.trunc_f64_s";
    case Opcode::I64TruncF64U: return "i64.trunc_f64_u";
    case Opcode::F32ConvertI32S: return "f32.convert_i32_s";
    case Opcode::F32ConvertI32U: return "f32.convert_i32_u";
    case Opcode::F32ConvertI64S: return "f32.convert_i64_s";
    case Opcode::F32ConvertI64U: return "f32.convert_i64_u";
    case Opcode::F32DemoteF64: return "f32.demote_f64";
    case Opcode::F64ConvertI32S: return "f64.convert_i32_s";
    case Opcode::F64ConvertI32U: return "f64.convert_i32_u";
    case Opcode::F64ConvertI64S: return "f64.convert_i64_s";
    case Opcode::F64ConvertI64U: return "f64.convert_i64_u";
    case Opcode::F64PromoteF32: return "f64.promote_f32";
    case Opcode::I32ReinterpretF32: return "i32.reinterpret_f32";
    case Opcode::I64ReinterpretF64: return "i64.reinterpret_f64";
    case Opcode::F32ReinterpretI32: return "f32.reinterpret_i32";
    case Opcode::F64ReinterpretI64: return "f64.reinterpret_i64";
  }
  return "<unknown>";
}

bool is_known_opcode(uint8_t byte) {
  if (byte <= 0x11) {
    return byte <= 0x05 || byte == 0x0b || (byte >= 0x0c && byte <= 0x11);
  }
  if (byte == 0x1a || byte == 0x1b) return true;
  if (byte >= 0x20 && byte <= 0x24) return true;
  if (byte >= 0x28 && byte <= 0x2f) return true;
  if (byte >= 0x36 && byte <= 0x3b) return true;
  if (byte == 0x3f || byte == 0x40) return true;
  if (byte >= 0x41 && byte <= 0xbf) return true;
  return false;
}

const char* to_string(ValType t) {
  switch (t) {
    case ValType::I32: return "i32";
    case ValType::I64: return "i64";
    case ValType::F32: return "f32";
    case ValType::F64: return "f64";
  }
  return "<badtype>";
}

const char* to_string(Trap t) {
  switch (t) {
    case Trap::None: return "none";
    case Trap::Unreachable: return "unreachable executed";
    case Trap::MemoryOutOfBounds: return "out of bounds memory access";
    case Trap::IntegerDivideByZero: return "integer divide by zero";
    case Trap::IntegerOverflow: return "integer overflow";
    case Trap::InvalidConversion: return "invalid conversion to integer";
    case Trap::CallStackExhausted: return "call stack exhausted";
    case Trap::FuelExhausted: return "fuel exhausted";
    case Trap::UndefinedElement: return "undefined table element";
    case Trap::IndirectCallTypeMismatch: return "indirect call type mismatch";
    case Trap::HostError: return "host function error";
  }
  return "<badtrap>";
}

}  // namespace wb::wasm
