// In-memory representation of a WebAssembly module: the object produced by
// the compiler backend and the binary decoder, consumed by the validator,
// the binary encoder, the WAT printer, and the interpreter.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "wasm/opcode.h"
#include "wasm/types.h"

namespace wb::wasm {

/// One decoded instruction. Immediates are stored inline:
///  - block/loop/if : `a` = block type byte (kVoidBlockType or ValType)
///  - br/br_if      : `a` = relative depth
///  - br_table      : `a` = index into Module::br_tables
///  - call          : `a` = function index (import-space first)
///  - call_indirect : `a` = type index
///  - local/global  : `a` = index
///  - load/store    : `a` = align (log2), `b` = offset
///  - i32/i64.const : `ival`
///  - f32/f64.const : `fval`
struct Instr {
  Opcode op = Opcode::Nop;
  uint32_t a = 0;
  uint32_t b = 0;
  int64_t ival = 0;
  double fval = 0;

  static Instr make(Opcode op, uint32_t a = 0, uint32_t b = 0) {
    Instr ins;
    ins.op = op;
    ins.a = a;
    ins.b = b;
    return ins;
  }
  static Instr i32_const(int32_t v) {
    Instr ins;
    ins.op = Opcode::I32Const;
    ins.ival = v;
    return ins;
  }
  static Instr i64_const(int64_t v) {
    Instr ins;
    ins.op = Opcode::I64Const;
    ins.ival = v;
    return ins;
  }
  static Instr f32_const(float v) {
    Instr ins;
    ins.op = Opcode::F32Const;
    ins.fval = v;
    return ins;
  }
  static Instr f64_const(double v) {
    Instr ins;
    ins.op = Opcode::F64Const;
    ins.fval = v;
    return ins;
  }
};

/// An imported host function.
struct Import {
  std::string module;
  std::string name;
  uint32_t type_index = 0;
};

/// A function defined in the module. `body` must end with an End opcode.
struct Function {
  uint32_t type_index = 0;
  std::vector<ValType> locals;  ///< extra locals beyond parameters
  std::vector<Instr> body;
  std::string debug_name;  ///< not serialized; used by WAT printer and logs
};

struct Global {
  ValType type = ValType::I32;
  bool mutable_ = false;
  Value init;
};

struct MemoryDecl {
  uint32_t min_pages = 0;
  std::optional<uint32_t> max_pages;
};

enum class ExportKind : uint8_t { Func = 0, Memory = 2, Global = 3 };

struct Export {
  std::string name;
  ExportKind kind = ExportKind::Func;
  uint32_t index = 0;  ///< function index (import-space first) / global index
};

/// A passive data initializer placed at a fixed offset (active segment).
struct DataSegment {
  uint32_t offset = 0;
  std::vector<uint8_t> bytes;
};

/// An element segment initializing the (single) funcref table.
struct ElemSegment {
  uint32_t offset = 0;
  std::vector<uint32_t> func_indices;
};

struct Module {
  std::vector<FuncType> types;
  std::vector<Import> imports;          ///< imported functions only
  std::vector<Function> functions;      ///< defined functions
  std::vector<Global> globals;
  std::optional<MemoryDecl> memory;
  std::optional<uint32_t> table_size;   ///< funcref table, if present
  std::vector<ElemSegment> elems;
  std::vector<Export> exports;
  std::vector<DataSegment> data;
  std::vector<std::vector<uint32_t>> br_tables;  ///< side table for br_table targets

  /// Total number of functions in index space (imports first).
  [[nodiscard]] uint32_t num_func_index_space() const {
    return static_cast<uint32_t>(imports.size() + functions.size());
  }

  /// Adds `type` (deduplicated) and returns its index.
  uint32_t intern_type(const FuncType& type) {
    for (uint32_t i = 0; i < types.size(); ++i) {
      if (types[i] == type) return i;
    }
    types.push_back(type);
    return static_cast<uint32_t>(types.size() - 1);
  }

  /// Looks up an export by name.
  [[nodiscard]] const Export* find_export(std::string_view name) const {
    for (const auto& e : exports) {
      if (e.name == name) return &e;
    }
    return nullptr;
  }

  /// Type of a function in combined index space.
  [[nodiscard]] const FuncType& func_type(uint32_t func_index) const {
    if (func_index < imports.size()) return types[imports[func_index].type_index];
    return types[functions[func_index - imports.size()].type_index];
  }
};

}  // namespace wb::wasm
