// The WebAssembly interpreter ("virtual machine"). Structurally this plays
// the role browsers' Wasm engines play in the paper: it executes validated
// modules under a two-tier model (a baseline tier and an optimizing tier,
// mirroring LiftOff/TurboFan and Baseline/Ion) and charges every executed
// instruction a cost from per-tier cost tables supplied by the environment.
// Accumulated cost is the deterministic "execution time" the measurement
// harness reports.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "attr/cause.h"
#include "wasm/memory.h"
#include "wasm/module.h"
#include "wasm/quicken.h"

namespace wb::prof {
class Tracer;
}
namespace wb::replay {
class BoundarySink;
}
namespace wb::wasm::jit {
class CodeCache;
class CompiledFunction;
}

namespace wb::wasm {

/// Execution tiers. Baseline ~ quick single-pass compile, slower code;
/// Optimizing ~ the JIT tier, faster code.
enum class Tier : uint8_t { Baseline = 0, Optimizing = 1 };

/// Per-opcode-class execution costs, in picoseconds of virtual time.
using CostTable = std::array<uint64_t, kOpClassCount>;

/// Cause-attribution counters (always maintained; see attr/cause.h).
using AttrStats = attr::VmAttr<kOpClassCount>;

/// Tiering configuration, set per-instance by the environment to model a
/// browser's Wasm compiler pipeline settings (paper Sec. 4.4, Table 7).
struct TierPolicy {
  bool baseline_enabled = true;
  bool optimizing_enabled = true;
  /// Hotness (function entries + loop back-edges) before tier-up.
  uint64_t tierup_threshold = 1000;
  /// One-time virtual-time cost per body instruction when a function tiers
  /// up (the optimizing compiler's compile time).
  uint64_t tierup_cost_per_instr = 400;
};

/// Execution statistics, read by the measurement harness.
struct ExecStats {
  uint64_t ops_executed = 0;
  uint64_t cost_ps = 0;  ///< accumulated virtual time
  std::array<uint64_t, kArithCatCount> arith_counts{};
  uint64_t calls = 0;
  uint64_t host_calls = 0;
  uint64_t memory_grows = 0;
  uint64_t tierups = 0;
};

/// A host (imported) function: reads args, may write one result.
/// Returning anything but Trap::None aborts execution.
using HostFn =
    std::function<Trap(std::span<const Value> args, Value* result)>;

/// Result of invoking an exported function.
struct InvokeResult {
  Trap trap = Trap::None;
  Value value;  ///< valid when the function has a result and trap == None
  [[nodiscard]] bool ok() const { return trap == Trap::None; }
};

/// An instantiated module: globals, linear memory, table, and tier state.
/// The module must outlive the instance and must have been validated.
class Instance {
 public:
  /// `host_fns` must supply one function per module import, in order.
  Instance(const Module& module, std::vector<HostFn> host_fns);

  ~Instance();
  Instance(const Instance&) = delete;
  Instance& operator=(const Instance&) = delete;

  /// Sets both tier cost tables. Defaults are flat 100ps/op.
  void set_cost_tables(const CostTable& baseline, const CostTable& optimizing);
  void set_tier_policy(const TierPolicy& policy);
  /// Charges additional one-off virtual time (e.g. instantiate/startup),
  /// tagged with the attribution cause it should decompose to.
  void charge(uint64_t cost_ps, attr::Cause cause = attr::Cause::Startup) {
    stats_.cost_ps += cost_ps;
    attr_.add_direct(cause, cost_ps);
  }
  /// Extra virtual-time cost per memory.grow, modelling the toolchain
  /// runtime's growth path (Cheerp vs Emscripten, paper Sec. 4.2.2).
  void set_grow_cost(uint64_t cost_ps) { grow_cost_ps_ = cost_ps; }

  /// Aborts execution after this many instructions (guards runaway tests).
  void set_fuel(uint64_t max_ops) { fuel_ = max_ops; }

  /// Attaches a profiler sink (nullptr detaches). Function and import
  /// names are interned once here; events are emitted from cold paths
  /// only (enter/exit, tier-up, memory.grow, host call) and never charge
  /// virtual time, so all reported metrics are identical with or without
  /// a tracer attached.
  void set_tracer(prof::Tracer* tracer);

  /// Attaches a boundary recorder (nullptr detaches). Recording observes
  /// host-import calls and memory.grow from the same cold paths the
  /// tracer uses and never charges virtual time, so all reported metrics
  /// are bit-identical with or without a recorder attached (the wb::replay
  /// observable-neutrality contract).
  void set_recorder(replay::BoundarySink* recorder) { recorder_ = recorder; }

  /// Toggles quickened execution (pre-translated QCode with threaded
  /// dispatch; see quicken.h) for this instance. Follows the process-wide
  /// `quicken_default()` at construction. All reported metrics are
  /// bit-identical to the classic loop either way; only host-side wall
  /// clock differs.
  void set_quicken(bool enabled);
  [[nodiscard]] bool quicken_enabled() const { return quicken_enabled_; }

  /// Toggles the copy-and-patch template JIT (the third execution tier;
  /// see jit/jit.h) for this instance. Follows the process-wide
  /// `jit::jit_default()` at construction. Requires quickened dispatch
  /// (the JIT lowers QCode) and a host that can run generated x86-64, and
  /// silently stays off otherwise — all reported metrics are bit-identical
  /// to the classic and quickened loops either way. Optimizing-tier leaf
  /// functions are compiled lazily at entry; ineligible bodies fall back
  /// to quickened dispatch per function.
  void set_jit(bool enabled);
  [[nodiscard]] bool jit_enabled() const { return jit_enabled_; }
  /// Functions JIT-compiled so far (observability for tests and tools).
  [[nodiscard]] size_t jit_compiled_functions() const;

  /// A deep copy of everything that survives between invokes: the VM-side
  /// half of a `.wbsnap` snapshot (wb::snap owns the byte format). All
  /// fields are plain data so the snap layer can serialize them
  /// canonically.
  struct SnapshotState {
    struct FuncSnap {
      uint8_t tier = 0;        ///< Tier as uint8_t
      uint64_t hotness = 0;
      /// JitSlot::State verdict as uint8_t (Unknown/Compiled/Ineligible).
      /// Compiled bodies are re-lowered deterministically on restore; only
      /// the verdict is carried.
      uint8_t jit_state = 0;
    };
    std::vector<Value> globals;
    bool has_memory = false;
    std::vector<uint8_t> memory_bytes;   ///< full image (elision is snap's job)
    uint64_t memory_peak_bytes = 0;
    uint64_t memory_grow_count = 0;
    std::vector<uint32_t> table;
    std::vector<FuncSnap> funcs;
    ExecStats stats;
    AttrStats attr;
  };

  /// Captures the instance's resumable state (call between invokes).
  [[nodiscard]] SnapshotState capture_snapshot() const;
  /// Restores state captured from an identically-shaped instance. Call
  /// AFTER all configuration (set_cost_tables resets JIT slots and
  /// set_tier_policy can re-tier every function). `with_stats` restores
  /// the virtual clock and attribution too (exact resume: continuation is
  /// bit-identical to the original run); without it the clock stays at
  /// zero for a modeled warm start. Returns false on shape mismatch.
  bool restore_snapshot(const SnapshotState& s, bool with_stats);

  /// Invokes an exported function by name.
  InvokeResult invoke(std::string_view export_name, std::span<const Value> args);
  /// Invokes by function index (combined import+defined space).
  InvokeResult invoke_index(uint32_t func_index, std::span<const Value> args);

  [[nodiscard]] const ExecStats& stats() const { return stats_; }
  /// What was charged, keyed by (tier, OpClass) + direct causes; together
  /// with cost_tables() this reproduces stats().cost_ps exactly.
  [[nodiscard]] const AttrStats& attr_stats() const { return attr_; }
  [[nodiscard]] const std::array<CostTable, 2>& cost_tables() const {
    return cost_tables_;
  }
  [[nodiscard]] LinearMemory* memory() { return memory_ ? memory_.get() : nullptr; }
  [[nodiscard]] const Module& module() const { return module_; }
  [[nodiscard]] Value global(uint32_t index) const { return globals_[index]; }
  [[nodiscard]] Tier function_tier(uint32_t defined_index) const {
    return func_state_[defined_index].tier;
  }

 private:
  struct FuncMeta;
  struct FuncState {
    Tier tier = Tier::Baseline;
    uint64_t hotness = 0;
  };

  /// The JIT code for a defined function, compiling it on first request;
  /// nullptr when the body is not JIT-eligible (cached either way).
  jit::CompiledFunction* jit_compiled(uint32_t defined_index);

  InvokeResult run(uint32_t func_index, std::span<const Value> args);
  /// The reference one-Instr-at-a-time loop (kept for --no-quicken and as
  /// the differential-testing baseline).
  InvokeResult run_classic(uint32_t defined_index, std::span<const Value> args);
  /// The quickened threaded-dispatch loop over qfuncs_.
  InvokeResult run_quickened(uint32_t defined_index, std::span<const Value> args);
  /// `now_ps` is the current virtual time (stats_.cost_ps plus the run
  /// loop's unflushed cost), used to timestamp the tier-up trace event.
  void maybe_tier_up(uint32_t defined_index, uint64_t now_ps);

  const Module& module_;
  std::vector<HostFn> host_fns_;
  std::vector<Value> globals_;
  std::unique_ptr<LinearMemory> memory_;
  std::vector<uint32_t> table_;
  std::vector<FuncMeta> metas_;       // per defined function
  std::vector<FuncState> func_state_; // per defined function
  std::vector<QFunc> qfuncs_;         // per defined function (when quickened)
  bool quicken_enabled_ = false;

  /// Per-function JIT state: compiled lazily, with ineligibility cached so
  /// the eligibility scan runs at most once per function.
  struct JitSlot {
    enum class State : uint8_t { Unknown, Compiled, Ineligible };
    State state = State::Unknown;
    std::unique_ptr<jit::CompiledFunction> fn;
  };
  std::vector<JitSlot> jit_slots_;    // per defined function (when JIT on)
  std::unique_ptr<jit::CodeCache> jit_cache_;
  bool jit_enabled_ = false;
  std::array<CostTable, 2> cost_tables_;
  TierPolicy tier_policy_;
  ExecStats stats_;
  AttrStats attr_;
  uint64_t fuel_ = UINT64_MAX;
  uint64_t grow_cost_ps_ = 0;

  prof::Tracer* tracer_ = nullptr;
  std::vector<uint32_t> func_trace_names_;    // per defined function
  std::vector<uint32_t> import_trace_names_;  // per import
  uint32_t grow_trace_name_ = 0;

  replay::BoundarySink* recorder_ = nullptr;
};

}  // namespace wb::wasm
