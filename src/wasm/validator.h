// Module validation: the standard Wasm type-checking algorithm
// (value stack + control stack with unreachable polymorphism), plus
// module-level index and limit checks. A module that validates will not
// cause type confusion in the interpreter.
#pragma once

#include <optional>
#include <string>

#include "wasm/module.h"

namespace wb::wasm {

struct ValidationError {
  std::string message;
  /// Function index (combined space) the error occurred in, or UINT32_MAX
  /// for module-level errors.
  uint32_t func_index = UINT32_MAX;
};

/// Returns nullopt if `module` is valid.
std::optional<ValidationError> validate(const Module& module);

}  // namespace wb::wasm
