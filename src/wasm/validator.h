// Module validation: the standard Wasm type-checking algorithm
// (value stack + control stack with unreachable polymorphism), plus
// module-level index and limit checks. A module that validates will not
// cause type confusion in the interpreter.
#pragma once

#include <optional>
#include <string>

#include "wasm/module.h"

namespace wb::wasm {

struct ValidationError {
  /// Full diagnostic: for code errors, prefixed with the function index
  /// (and debug name when present), the instruction index, its byte offset
  /// within the encoded function body, and the opcode — fuzz-finding triage
  /// needs to land on the offending instruction without a debugger.
  std::string message;
  /// Function index (combined space) the error occurred in, or UINT32_MAX
  /// for module-level errors.
  uint32_t func_index = UINT32_MAX;
  /// Index of the offending instruction in Function::body, or UINT32_MAX
  /// for module-level errors.
  uint32_t instr_index = UINT32_MAX;
  /// Byte offset of the offending opcode within the function's encoded
  /// code-entry body (locals prefix included); 0 for module-level errors.
  size_t byte_offset = 0;
};

/// Returns nullopt if `module` is valid.
std::optional<ValidationError> validate(const Module& module);

}  // namespace wb::wasm
