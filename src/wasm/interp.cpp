#include "wasm/interp.h"

#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>

#include "prof/prof.h"
#include "replay/boundary.h"
#include "wasm/jit/cache.h"
#include "wasm/jit/jit.h"

namespace wb::wasm {

namespace {

/// Forwards a successful host-import call to the boundary recorder as raw
/// 64-bit patterns. Host functions take at most 16 args (enforced at the
/// call sites), so a stack buffer suffices.
void record_host_call(replay::BoundarySink* recorder, uint32_t import_index,
                      std::span<const Value> args, Value result, bool has_result) {
  uint64_t bits[16];
  for (size_t i = 0; i < args.size(); ++i) bits[i] = args[i].bits;
  recorder->wasm_host_call(import_index,
                           std::span<const uint64_t>(bits, args.size()),
                           result.bits, has_result);
}

// --- Wasm-compliant float helpers -----------------------------------------

template <typename F>
F wasm_fmin(F a, F b) {
  if (std::isnan(a) || std::isnan(b)) return std::numeric_limits<F>::quiet_NaN();
  if (a == b) return std::signbit(a) ? a : b;
  return a < b ? a : b;
}

template <typename F>
F wasm_fmax(F a, F b) {
  if (std::isnan(a) || std::isnan(b)) return std::numeric_limits<F>::quiet_NaN();
  if (a == b) return std::signbit(a) ? b : a;
  return a > b ? a : b;
}

// Checked float->int truncations (trap on NaN / out of range).
template <typename I, typename F>
bool trunc_checked(F x, I& out) {
  if (std::isnan(x)) return false;
  const F t = std::trunc(x);
  // Bounds: representable values of I are (lo-1, hi+1) exclusive after trunc.
  constexpr F lo = static_cast<F>(std::numeric_limits<I>::min());
  // hi as float may round up for 64-bit; compare against 2^63 / 2^31 etc.
  if constexpr (std::is_same_v<I, int32_t>) {
    if (t < -2147483648.0 || t > 2147483647.0) return false;
  } else if constexpr (std::is_same_v<I, uint32_t>) {
    if (t < 0.0 || t > 4294967295.0) return false;
  } else if constexpr (std::is_same_v<I, int64_t>) {
    if (t < -9223372036854775808.0 || t >= 9223372036854775808.0) return false;
  } else {
    if (t < 0.0 || t >= 18446744073709551616.0) return false;
  }
  (void)lo;
  out = static_cast<I>(t);
  return true;
}

uint32_t rotl32(uint32_t x, uint32_t r) {
  r &= 31;
  return (x << r) | (x >> ((32 - r) & 31));
}
uint32_t rotr32(uint32_t x, uint32_t r) {
  r &= 31;
  return (x >> r) | (x << ((32 - r) & 31));
}
uint64_t rotl64(uint64_t x, uint64_t r) {
  r &= 63;
  return (x << r) | (x >> ((64 - r) & 63));
}
uint64_t rotr64(uint64_t x, uint64_t r) {
  r &= 63;
  return (x >> r) | (x << ((64 - r) & 63));
}

}  // namespace

/// Precomputed per-function execution metadata: resolved branch targets and
/// per-pc cost classes, built once at instantiation.
struct Instance::FuncMeta {
  std::vector<uint8_t> op_class;   // OpClass per pc
  std::vector<uint8_t> arith_cat;  // ArithCat per pc
  std::vector<uint32_t> end_pc;    // Block/Loop/If/Else: matching End pc
  std::vector<uint32_t> false_pc;  // If: pc to jump to when condition false
  uint32_t num_params = 0;
  uint32_t num_locals = 0;  // params + declared locals
  uint32_t result_count = 0;
};

Instance::~Instance() = default;

Instance::Instance(const Module& module, std::vector<HostFn> host_fns)
    : module_(module), host_fns_(std::move(host_fns)) {
  assert(host_fns_.size() == module.imports.size());

  for (const auto& g : module.globals) globals_.push_back(g.init);

  if (module.memory) {
    memory_ = std::make_unique<LinearMemory>(module.memory->min_pages,
                                             module.memory->max_pages);
    for (const auto& seg : module.data) {
      auto dst = memory_->bytes();
      assert(seg.offset + seg.bytes.size() <= dst.size());
      std::memcpy(dst.data() + seg.offset, seg.bytes.data(), seg.bytes.size());
    }
  }

  if (module.table_size) {
    table_.assign(*module.table_size, UINT32_MAX);
    for (const auto& seg : module.elems) {
      for (size_t i = 0; i < seg.func_indices.size(); ++i) {
        table_[seg.offset + i] = seg.func_indices[i];
      }
    }
  }

  // Flat default cost tables (overridden by the environment).
  cost_tables_[0].fill(100);
  cost_tables_[1].fill(100);

  // Precompute per-function metadata.
  metas_.resize(module.functions.size());
  func_state_.resize(module.functions.size());
  for (size_t fi = 0; fi < module.functions.size(); ++fi) {
    const Function& fn = module.functions[fi];
    FuncMeta& meta = metas_[fi];
    const FuncType& type = module.types[fn.type_index];
    meta.num_params = static_cast<uint32_t>(type.params.size());
    meta.num_locals = meta.num_params + static_cast<uint32_t>(fn.locals.size());
    meta.result_count = static_cast<uint32_t>(type.results.size());

    const size_t n = fn.body.size();
    meta.op_class.resize(n);
    meta.arith_cat.resize(n);
    meta.end_pc.assign(n, 0);
    meta.false_pc.assign(n, 0);

    std::vector<uint32_t> block_stack;  // pcs of open Block/Loop/If
    std::vector<uint32_t> else_stack;   // pc of Else for the open If, or 0
    for (uint32_t pc = 0; pc < n; ++pc) {
      const Instr& ins = fn.body[pc];
      meta.op_class[pc] = static_cast<uint8_t>(op_class(ins.op));
      meta.arith_cat[pc] = static_cast<uint8_t>(arith_cat(ins.op));
      switch (ins.op) {
        case Opcode::Block:
        case Opcode::Loop:
        case Opcode::If:
          block_stack.push_back(pc);
          else_stack.push_back(0);
          break;
        case Opcode::Else:
          assert(!block_stack.empty());
          else_stack.back() = pc;
          break;
        case Opcode::End: {
          if (block_stack.empty()) break;  // function-closing end
          const uint32_t open = block_stack.back();
          const uint32_t else_pc = else_stack.back();
          block_stack.pop_back();
          else_stack.pop_back();
          meta.end_pc[open] = pc;
          if (fn.body[open].op == Opcode::If) {
            meta.false_pc[open] = else_pc ? else_pc + 1 : pc;
          }
          if (else_pc) meta.end_pc[else_pc] = pc;
          break;
        }
        default:
          break;
      }
    }
  }

  set_quicken(quicken_default());
  set_jit(jit::jit_default());
}

void Instance::set_quicken(bool enabled) {
  quicken_enabled_ = enabled;
  if (!enabled) jit_enabled_ = false;  // the JIT lowers QCode
  if (enabled && qfuncs_.empty()) {
    qfuncs_.reserve(module_.functions.size());
    for (size_t fi = 0; fi < module_.functions.size(); ++fi) {
      qfuncs_.push_back(quicken(module_, static_cast<uint32_t>(fi)));
    }
  }
}

void Instance::set_jit(bool enabled) {
  jit_enabled_ = enabled && quicken_enabled_ && jit::available();
  if (jit_enabled_ && jit_slots_.size() != module_.functions.size()) {
    jit_slots_.resize(module_.functions.size());
  }
}

size_t Instance::jit_compiled_functions() const {
  size_t n = 0;
  for (const JitSlot& s : jit_slots_) {
    if (s.state == JitSlot::State::Compiled) ++n;
  }
  return n;
}

jit::CompiledFunction* Instance::jit_compiled(uint32_t defined_index) {
  JitSlot& slot = jit_slots_[defined_index];
  if (slot.state == JitSlot::State::Compiled) return slot.fn.get();
  if (slot.state == JitSlot::State::Ineligible) return nullptr;
  if (!jit_cache_) jit_cache_ = std::make_unique<jit::CodeCache>();
  const FuncMeta& m = metas_[defined_index];
  slot.fn = jit::compile(qfuncs_[defined_index], m.num_locals, m.result_count,
                         cost_tables_[1], *jit_cache_);
  slot.state = slot.fn ? JitSlot::State::Compiled : JitSlot::State::Ineligible;
  return slot.fn.get();
}

void Instance::set_cost_tables(const CostTable& baseline, const CostTable& optimizing) {
  cost_tables_[0] = baseline;
  cost_tables_[1] = optimizing;
  // JIT charge side tables are priced from the optimizing row at compile
  // time: recompile lazily against the new tables.
  for (JitSlot& s : jit_slots_) {
    s.state = JitSlot::State::Unknown;
    s.fn.reset();
  }
}

void Instance::set_tracer(prof::Tracer* tracer) {
  tracer_ = tracer;
  if (!tracer) return;
  func_trace_names_.clear();
  func_trace_names_.reserve(module_.functions.size());
  for (size_t i = 0; i < module_.functions.size(); ++i) {
    const std::string& dbg = module_.functions[i].debug_name;
    func_trace_names_.push_back(tracer->intern(
        dbg.empty() ? "func" + std::to_string(i + module_.imports.size()) : dbg));
  }
  import_trace_names_.clear();
  import_trace_names_.reserve(module_.imports.size());
  for (const Import& imp : module_.imports) {
    import_trace_names_.push_back(tracer->intern(imp.module + "." + imp.name));
  }
  grow_trace_name_ = tracer->intern("memory.grow");
}

void Instance::set_tier_policy(const TierPolicy& policy) {
  tier_policy_ = policy;
  if (!policy.baseline_enabled) {
    // Optimizing-only configuration: everything starts at the top tier
    // (compilation happens at instantiation; the environment accounts for
    // that as startup cost).
    for (auto& s : func_state_) s.tier = Tier::Optimizing;
  }
}

void Instance::maybe_tier_up(uint32_t defined_index, uint64_t now_ps) {
  FuncState& state = func_state_[defined_index];
  if (state.tier == Tier::Optimizing) return;
  ++state.hotness;
  if (!tier_policy_.optimizing_enabled) return;
  if (state.hotness < tier_policy_.tierup_threshold) return;
  state.tier = Tier::Optimizing;
  ++stats_.tierups;
  const uint64_t compile_ps = tier_policy_.tierup_cost_per_instr *
                              module_.functions[defined_index].body.size();
  stats_.cost_ps += compile_ps;
  attr_.add_direct(attr::Cause::TierCompile, compile_ps);
  if (tracer_) {
    // The compile pause ends at now + compile cost; its virtual duration
    // rides as the payload (the function's span absorbs it as self time,
    // like a DevTools "Compile Wasm" slice attributed to the hot frame).
    tracer_->instant(prof::Cat::TierUp, func_trace_names_[defined_index],
                     now_ps + compile_ps, compile_ps);
  }
}

Instance::SnapshotState Instance::capture_snapshot() const {
  SnapshotState s;
  s.globals = globals_;
  if (memory_) {
    s.has_memory = true;
    s.memory_bytes.assign(memory_->bytes().begin(), memory_->bytes().end());
    s.memory_peak_bytes = memory_->peak_bytes();
    s.memory_grow_count = memory_->grow_count();
  }
  s.table = table_;
  s.funcs.reserve(func_state_.size());
  for (size_t i = 0; i < func_state_.size(); ++i) {
    SnapshotState::FuncSnap f;
    f.tier = static_cast<uint8_t>(func_state_[i].tier);
    f.hotness = func_state_[i].hotness;
    f.jit_state = i < jit_slots_.size()
                      ? static_cast<uint8_t>(jit_slots_[i].state)
                      : static_cast<uint8_t>(JitSlot::State::Unknown);
    s.funcs.push_back(f);
  }
  s.stats = stats_;
  s.attr = attr_;
  return s;
}

bool Instance::restore_snapshot(const SnapshotState& s, bool with_stats) {
  if (s.globals.size() != globals_.size()) return false;
  if (s.has_memory != (memory_ != nullptr)) return false;
  if (s.table.size() != table_.size()) return false;
  if (s.funcs.size() != func_state_.size()) return false;
  if (memory_) {
    if (!memory_->restore(s.memory_bytes, s.memory_peak_bytes,
                          s.memory_grow_count)) {
      return false;
    }
  }
  globals_ = s.globals;
  table_ = s.table;
  for (size_t i = 0; i < s.funcs.size(); ++i) {
    func_state_[i].tier = static_cast<Tier>(s.funcs[i].tier);
    func_state_[i].hotness = s.funcs[i].hotness;
  }
  // Re-establish JIT verdicts: Compiled bodies are lowered again (the
  // compile is deterministic, so the generated charge tables match);
  // Ineligible is carried so the eligibility scan is not repeated.
  if (jit_enabled_) {
    for (size_t i = 0; i < s.funcs.size(); ++i) {
      const auto verdict = static_cast<JitSlot::State>(s.funcs[i].jit_state);
      if (verdict == JitSlot::State::Compiled) {
        (void)jit_compiled(static_cast<uint32_t>(i));
      } else if (verdict == JitSlot::State::Ineligible) {
        jit_slots_[i].state = JitSlot::State::Ineligible;
        jit_slots_[i].fn.reset();
      }
    }
  }
  if (with_stats) {
    stats_ = s.stats;
    attr_ = s.attr;
  }
  return true;
}

InvokeResult Instance::invoke(std::string_view export_name, std::span<const Value> args) {
  const Export* e = module_.find_export(export_name);
  if (!e || e->kind != ExportKind::Func) return {Trap::HostError, {}};
  return invoke_index(e->index, args);
}

InvokeResult Instance::invoke_index(uint32_t func_index, std::span<const Value> args) {
  return run(func_index, args);
}

namespace {
struct CtrlFrame {
  uint32_t height;  // value-stack height at block entry
  uint32_t br_pc;   // where a branch targeting this frame jumps
  uint8_t arity;    // block result count (0 or 1)
  bool is_loop;
};
struct CallFrame {
  uint32_t fidx;        // defined-function index
  uint32_t pc;
  uint32_t locals_base;
  uint32_t ctrl_base;
  uint32_t stack_base;  // value-stack height on entry (params already removed)
};
constexpr size_t kMaxCallDepth = 2000;
}  // namespace

InvokeResult Instance::run(uint32_t func_index, std::span<const Value> args) {
  const uint32_t num_imports = static_cast<uint32_t>(module_.imports.size());

  // Direct host-function invocation.
  if (func_index < num_imports) {
    Value result;
    ++stats_.host_calls;
    if (tracer_) {
      tracer_->instant(prof::Cat::HostCall, import_trace_names_[func_index],
                       stats_.cost_ps);
    }
    const Trap t = host_fns_[func_index](args, &result);
    if (recorder_ && t == Trap::None && args.size() <= 16) {
      const FuncType& type = module_.types[module_.imports[func_index].type_index];
      record_host_call(recorder_, func_index, args, result, !type.results.empty());
    }
    return {t, result};
  }

  const uint32_t d = func_index - num_imports;
  if (args.size() != metas_[d].num_params) return {Trap::HostError, {}};
  return quicken_enabled_ ? run_quickened(d, args) : run_classic(d, args);
}

InvokeResult Instance::run_classic(uint32_t defined_index,
                                   std::span<const Value> args) {
  const uint32_t num_imports = static_cast<uint32_t>(module_.imports.size());

  std::vector<Value> stack;
  stack.reserve(256);
  std::vector<Value> locals;
  locals.reserve(256);
  std::vector<CtrlFrame> ctrls;
  ctrls.reserve(64);
  std::vector<CallFrame> frames;
  frames.reserve(64);

  uint64_t cost = 0;
  uint64_t ops = 0;
  uint64_t fuel = fuel_;
  Trap trap = Trap::None;

  auto flush_stats = [&] {
    stats_.cost_ps += cost;
    stats_.ops_executed += ops;
  };

  // Cached per-frame execution state.
  const Instr* code = nullptr;
  uint32_t code_size = 0;
  const FuncMeta* meta = nullptr;
  const uint64_t* costs = nullptr;
  uint64_t* ccnt = nullptr;  // attribution: per-class counts of the active tier
  uint32_t pc = 0;

  auto cache_frame = [&] {
    const CallFrame& f = frames.back();
    const Function& fn = module_.functions[f.fidx];
    code = fn.body.data();
    code_size = static_cast<uint32_t>(fn.body.size());
    meta = &metas_[f.fidx];
    const auto tier = static_cast<size_t>(func_state_[f.fidx].tier);
    costs = cost_tables_[tier].data();
    ccnt = attr_.class_counts[tier].data();
    pc = f.pc;
  };

  // Enters defined function `d`; its `nparams` arguments are on top of the
  // value stack (or in `args` for the initial call).
  auto enter_function = [&](uint32_t d, std::span<const Value> initial_args) -> bool {
    if (frames.size() >= kMaxCallDepth) {
      trap = Trap::CallStackExhausted;
      return false;
    }
    // Begin the span first so a tier-up compile pause on this entry lands
    // inside the entered function's self time.
    if (tracer_) {
      tracer_->begin(prof::Cat::WasmFunc, func_trace_names_[d], stats_.cost_ps + cost);
    }
    maybe_tier_up(d, stats_.cost_ps + cost);
    ++stats_.calls;
    const FuncMeta& m = metas_[d];
    CallFrame f;
    f.fidx = d;
    f.pc = 0;
    f.locals_base = static_cast<uint32_t>(locals.size());
    f.ctrl_base = static_cast<uint32_t>(ctrls.size());
    if (!initial_args.empty() || m.num_params == 0) {
      f.stack_base = static_cast<uint32_t>(stack.size());
      locals.insert(locals.end(), initial_args.begin(), initial_args.end());
    } else {
      f.stack_base = static_cast<uint32_t>(stack.size()) - m.num_params;
      locals.insert(locals.end(), stack.end() - m.num_params, stack.end());
      stack.resize(f.stack_base);
    }
    locals.resize(f.locals_base + m.num_locals, Value{});
    // Implicit function-body frame.
    ctrls.push_back(CtrlFrame{f.stack_base,
                              static_cast<uint32_t>(module_.functions[d].body.size()),
                              static_cast<uint8_t>(m.result_count), false});
    frames.push_back(f);
    cache_frame();
    return true;
  };

  if (!enter_function(defined_index, args)) {
    flush_stats();
    return {trap, {}};
  }

  auto do_branch = [&](uint32_t depth) {
    const size_t target_index = ctrls.size() - 1 - depth;
    CtrlFrame& target = ctrls[target_index];
    if (target.is_loop) {
      stack.resize(target.height);
      ctrls.resize(target_index + 1);
      pc = target.br_pc;
      // Loop back-edge: contributes to hotness for tier-up.
      const uint32_t d = frames.back().fidx;
      const Tier before = func_state_[d].tier;
      maybe_tier_up(d, stats_.cost_ps + cost);
      if (func_state_[d].tier != before) {
        const auto tier = static_cast<size_t>(func_state_[d].tier);
        costs = cost_tables_[tier].data();
        ccnt = attr_.class_counts[tier].data();
      }
    } else {
      const uint32_t arity = target.arity;
      for (uint32_t i = 0; i < arity; ++i) {
        stack[target.height + i] = stack[stack.size() - arity + i];
      }
      stack.resize(target.height + arity);
      pc = target.br_pc;
      ctrls.resize(target_index);
    }
  };

  auto pop = [&]() -> Value {
    Value v = stack.back();
    stack.pop_back();
    return v;
  };

  while (true) {
    if (pc >= code_size) {
      // Function return: results are on the stack; unwind the frame.
      const CallFrame f = frames.back();
      if (tracer_) {
        tracer_->end(prof::Cat::WasmFunc, func_trace_names_[f.fidx],
                     stats_.cost_ps + cost);
      }
      frames.pop_back();
      locals.resize(f.locals_base);
      ctrls.resize(f.ctrl_base);
      if (frames.empty()) {
        flush_stats();
        const FuncMeta& m = metas_[f.fidx];
        InvokeResult result;
        result.trap = Trap::None;
        if (m.result_count > 0) result.value = stack.back();
        return result;
      }
      // pc already advanced before the call
      cache_frame();
      continue;
    }

    if (ops >= fuel) {
      trap = Trap::FuelExhausted;
      break;
    }

    const Instr& ins = code[pc];
    ++ops;
    cost += costs[meta->op_class[pc]];
    ++ccnt[meta->op_class[pc]];
    {
      const uint8_t cat = meta->arith_cat[pc];
      if (cat != static_cast<uint8_t>(ArithCat::None)) ++stats_.arith_counts[cat];
    }

    switch (ins.op) {
      case Opcode::Unreachable:
        trap = Trap::Unreachable;
        break;
      case Opcode::Nop:
        break;
      case Opcode::Block:
        ctrls.push_back(CtrlFrame{static_cast<uint32_t>(stack.size()),
                                  meta->end_pc[pc] + 1,
                                  static_cast<uint8_t>(ins.a == kVoidBlockType ? 0 : 1),
                                  false});
        break;
      case Opcode::Loop:
        ctrls.push_back(CtrlFrame{static_cast<uint32_t>(stack.size()), pc + 1,
                                  static_cast<uint8_t>(ins.a == kVoidBlockType ? 0 : 1),
                                  true});
        break;
      case Opcode::If: {
        const int32_t cond = pop().as_i32();
        ctrls.push_back(CtrlFrame{static_cast<uint32_t>(stack.size()),
                                  meta->end_pc[pc] + 1,
                                  static_cast<uint8_t>(ins.a == kVoidBlockType ? 0 : 1),
                                  false});
        if (cond == 0) {
          pc = meta->false_pc[pc];
          continue;
        }
        break;
      }
      case Opcode::Else:
        // Reached from the end of the then-branch: skip to the End.
        pc = meta->end_pc[pc];
        continue;
      case Opcode::End:
        ctrls.pop_back();
        break;
      case Opcode::Br:
        do_branch(ins.a);
        continue;
      case Opcode::BrIf: {
        const int32_t cond = pop().as_i32();
        if (cond != 0) {
          do_branch(ins.a);
          continue;
        }
        break;
      }
      case Opcode::BrTable: {
        const uint32_t idx = pop().as_u32();
        const auto& targets = module_.br_tables[ins.a];
        const uint32_t depth =
            idx < targets.size() - 1 ? targets[idx] : targets.back();
        do_branch(depth);
        continue;
      }
      case Opcode::Return: {
        CtrlFrame& body_frame = ctrls[frames.back().ctrl_base];
        const uint32_t arity = body_frame.arity;
        for (uint32_t i = 0; i < arity; ++i) {
          stack[body_frame.height + i] = stack[stack.size() - arity + i];
        }
        stack.resize(body_frame.height + arity);
        pc = code_size;
        continue;
      }
      case Opcode::Call:
      case Opcode::CallIndirect: {
        uint32_t callee = ins.a;
        if (ins.op == Opcode::CallIndirect) {
          const uint32_t entry = pop().as_u32();
          if (entry >= table_.size() || table_[entry] == UINT32_MAX) {
            trap = Trap::UndefinedElement;
            break;
          }
          callee = table_[entry];
          const FuncType& expect = module_.types[ins.a];
          if (!(module_.func_type(callee) == expect)) {
            trap = Trap::IndirectCallTypeMismatch;
            break;
          }
        }
        if (callee < num_imports) {
          const FuncType& type = module_.types[module_.imports[callee].type_index];
          const size_t nargs = type.params.size();
          Value host_args_buf[16];
          if (nargs > 16) {
            trap = Trap::HostError;  // host functions take at most 16 args
            break;
          }
          for (size_t i = 0; i < nargs; ++i) {
            host_args_buf[nargs - 1 - i] = pop();
          }
          Value result;
          ++stats_.host_calls;
          if (tracer_) {
            tracer_->instant(prof::Cat::HostCall, import_trace_names_[callee],
                             stats_.cost_ps + cost);
          }
          const Trap t = host_fns_[callee](
              std::span<const Value>(host_args_buf, nargs), &result);
          if (t != Trap::None) {
            trap = t;
            break;
          }
          if (recorder_) {
            record_host_call(recorder_, callee,
                             std::span<const Value>(host_args_buf, nargs), result,
                             !type.results.empty());
          }
          if (!type.results.empty()) stack.push_back(result);
          break;
        }
        frames.back().pc = pc + 1;
        if (!enter_function(callee - num_imports, {})) break;
        continue;
      }
      case Opcode::Drop:
        stack.pop_back();
        break;
      case Opcode::Select: {
        const int32_t cond = pop().as_i32();
        const Value b = pop();
        const Value a = pop();
        stack.push_back(cond != 0 ? a : b);
        break;
      }
      case Opcode::LocalGet:
        stack.push_back(locals[frames.back().locals_base + ins.a]);
        break;
      case Opcode::LocalSet:
        locals[frames.back().locals_base + ins.a] = pop();
        break;
      case Opcode::LocalTee:
        locals[frames.back().locals_base + ins.a] = stack.back();
        break;
      case Opcode::GlobalGet:
        stack.push_back(globals_[ins.a]);
        break;
      case Opcode::GlobalSet:
        globals_[ins.a] = pop();
        break;

      // ---- Memory ----
#define WB_LOAD_CASE(OP, CTYPE, PUSH)                                  \
  case Opcode::OP: {                                                   \
    const uint32_t addr = pop().as_u32();                              \
    CTYPE v;                                                           \
    if (!memory_->load<CTYPE>(addr, ins.b, v)) {                       \
      trap = Trap::MemoryOutOfBounds;                                  \
      break;                                                           \
    }                                                                  \
    stack.push_back(PUSH);                                             \
    break;                                                             \
  }
      WB_LOAD_CASE(I32Load, int32_t, Value::from_i32(v))
      WB_LOAD_CASE(I64Load, int64_t, Value::from_i64(v))
      WB_LOAD_CASE(F32Load, float, Value::from_f32(v))
      WB_LOAD_CASE(F64Load, double, Value::from_f64(v))
      WB_LOAD_CASE(I32Load8S, int8_t, Value::from_i32(v))
      WB_LOAD_CASE(I32Load8U, uint8_t, Value::from_i32(static_cast<int32_t>(v)))
      WB_LOAD_CASE(I32Load16S, int16_t, Value::from_i32(v))
      WB_LOAD_CASE(I32Load16U, uint16_t, Value::from_i32(static_cast<int32_t>(v)))
#undef WB_LOAD_CASE

#define WB_STORE_CASE(OP, CTYPE, GET)                                  \
  case Opcode::OP: {                                                   \
    const Value val = pop();                                           \
    const uint32_t addr = pop().as_u32();                              \
    if (!memory_->store<CTYPE>(addr, ins.b, GET)) {                    \
      trap = Trap::MemoryOutOfBounds;                                  \
      break;                                                           \
    }                                                                  \
    break;                                                             \
  }
      WB_STORE_CASE(I32Store, int32_t, val.as_i32())
      WB_STORE_CASE(I64Store, int64_t, val.as_i64())
      WB_STORE_CASE(F32Store, float, val.as_f32())
      WB_STORE_CASE(F64Store, double, val.as_f64())
      WB_STORE_CASE(I32Store8, uint8_t, static_cast<uint8_t>(val.as_u32()))
      WB_STORE_CASE(I32Store16, uint16_t, static_cast<uint16_t>(val.as_u32()))
#undef WB_STORE_CASE

      case Opcode::MemorySize:
        stack.push_back(Value::from_i32(static_cast<int32_t>(memory_->size_pages())));
        break;
      case Opcode::MemoryGrow: {
        const uint32_t delta = pop().as_u32();
        const int32_t prev_pages = memory_->grow(delta);
        stack.push_back(Value::from_i32(prev_pages));
        cost += grow_cost_ps_;
        attr_.add_direct(attr::Cause::MemoryGrowth, grow_cost_ps_);
        ++stats_.memory_grows;
        if (tracer_) {
          tracer_->instant(prof::Cat::MemoryGrow, grow_trace_name_,
                           stats_.cost_ps + cost, delta);
        }
        if (recorder_) recorder_->wasm_memory_grow(delta, prev_pages);
        break;
      }

      // ---- Constants ----
      case Opcode::I32Const:
        stack.push_back(Value::from_i32(static_cast<int32_t>(ins.ival)));
        break;
      case Opcode::I64Const:
        stack.push_back(Value::from_i64(ins.ival));
        break;
      case Opcode::F32Const:
        stack.push_back(Value::from_f32(static_cast<float>(ins.fval)));
        break;
      case Opcode::F64Const:
        stack.push_back(Value::from_f64(ins.fval));
        break;

      // ---- i32 compare ----
      case Opcode::I32Eqz:
        stack.back() = Value::from_i32(stack.back().as_i32() == 0);
        break;
#define WB_CMP32(OP, EXPR)                              \
  case Opcode::OP: {                                    \
    const Value bv = pop();                             \
    const Value av = stack.back();                      \
    const int32_t a = av.as_i32();                      \
    const int32_t b = bv.as_i32();                      \
    const uint32_t ua = av.as_u32();                    \
    const uint32_t ub = bv.as_u32();                    \
    (void)a; (void)b; (void)ua; (void)ub;               \
    stack.back() = Value::from_i32((EXPR) ? 1 : 0);     \
    break;                                              \
  }
      WB_CMP32(I32Eq, a == b)
      WB_CMP32(I32Ne, a != b)
      WB_CMP32(I32LtS, a < b)
      WB_CMP32(I32LtU, ua < ub)
      WB_CMP32(I32GtS, a > b)
      WB_CMP32(I32GtU, ua > ub)
      WB_CMP32(I32LeS, a <= b)
      WB_CMP32(I32LeU, ua <= ub)
      WB_CMP32(I32GeS, a >= b)
      WB_CMP32(I32GeU, ua >= ub)
#undef WB_CMP32

      case Opcode::I64Eqz:
        stack.back() = Value::from_i32(stack.back().as_i64() == 0);
        break;
#define WB_CMP64(OP, EXPR)                              \
  case Opcode::OP: {                                    \
    const Value bv = pop();                             \
    const Value av = stack.back();                      \
    const int64_t a = av.as_i64();                      \
    const int64_t b = bv.as_i64();                      \
    const uint64_t ua = av.as_u64();                    \
    const uint64_t ub = bv.as_u64();                    \
    (void)a; (void)b; (void)ua; (void)ub;               \
    stack.back() = Value::from_i32((EXPR) ? 1 : 0);     \
    break;                                              \
  }
      WB_CMP64(I64Eq, a == b)
      WB_CMP64(I64Ne, a != b)
      WB_CMP64(I64LtS, a < b)
      WB_CMP64(I64LtU, ua < ub)
      WB_CMP64(I64GtS, a > b)
      WB_CMP64(I64GtU, ua > ub)
      WB_CMP64(I64LeS, a <= b)
      WB_CMP64(I64LeU, ua <= ub)
      WB_CMP64(I64GeS, a >= b)
      WB_CMP64(I64GeU, ua >= ub)
#undef WB_CMP64

#define WB_FCMP(OP, TYPE, EXPR)                         \
  case Opcode::OP: {                                    \
    const TYPE b = pop().as_##TYPE();                   \
    const TYPE a = stack.back().as_##TYPE();            \
    stack.back() = Value::from_i32((EXPR) ? 1 : 0);     \
    break;                                              \
  }
      case Opcode::F32Eq: {
        const float b = pop().as_f32();
        const float a = stack.back().as_f32();
        stack.back() = Value::from_i32(a == b);
        break;
      }
      case Opcode::F32Ne: {
        const float b = pop().as_f32();
        const float a = stack.back().as_f32();
        stack.back() = Value::from_i32(a != b);
        break;
      }
      case Opcode::F32Lt: {
        const float b = pop().as_f32();
        const float a = stack.back().as_f32();
        stack.back() = Value::from_i32(a < b);
        break;
      }
      case Opcode::F32Gt: {
        const float b = pop().as_f32();
        const float a = stack.back().as_f32();
        stack.back() = Value::from_i32(a > b);
        break;
      }
      case Opcode::F32Le: {
        const float b = pop().as_f32();
        const float a = stack.back().as_f32();
        stack.back() = Value::from_i32(a <= b);
        break;
      }
      case Opcode::F32Ge: {
        const float b = pop().as_f32();
        const float a = stack.back().as_f32();
        stack.back() = Value::from_i32(a >= b);
        break;
      }
      case Opcode::F64Eq: {
        const double b = pop().as_f64();
        const double a = stack.back().as_f64();
        stack.back() = Value::from_i32(a == b);
        break;
      }
      case Opcode::F64Ne: {
        const double b = pop().as_f64();
        const double a = stack.back().as_f64();
        stack.back() = Value::from_i32(a != b);
        break;
      }
      case Opcode::F64Lt: {
        const double b = pop().as_f64();
        const double a = stack.back().as_f64();
        stack.back() = Value::from_i32(a < b);
        break;
      }
      case Opcode::F64Gt: {
        const double b = pop().as_f64();
        const double a = stack.back().as_f64();
        stack.back() = Value::from_i32(a > b);
        break;
      }
      case Opcode::F64Le: {
        const double b = pop().as_f64();
        const double a = stack.back().as_f64();
        stack.back() = Value::from_i32(a <= b);
        break;
      }
      case Opcode::F64Ge: {
        const double b = pop().as_f64();
        const double a = stack.back().as_f64();
        stack.back() = Value::from_i32(a >= b);
        break;
      }
#undef WB_FCMP

      // ---- i32 arithmetic ----
      case Opcode::I32Clz: {
        const uint32_t x = stack.back().as_u32();
        stack.back() = Value::from_i32(x == 0 ? 32 : __builtin_clz(x));
        break;
      }
      case Opcode::I32Ctz: {
        const uint32_t x = stack.back().as_u32();
        stack.back() = Value::from_i32(x == 0 ? 32 : __builtin_ctz(x));
        break;
      }
      case Opcode::I32Popcnt:
        stack.back() = Value::from_i32(__builtin_popcount(stack.back().as_u32()));
        break;
#define WB_BIN32(OP, EXPR)                                           \
  case Opcode::OP: {                                                 \
    const Value bv = pop();                                          \
    const Value av = stack.back();                                   \
    const uint32_t ua = av.as_u32();                                 \
    const uint32_t ub = bv.as_u32();                                 \
    (void)ua; (void)ub;                                              \
    stack.back() = Value::from_i32(static_cast<int32_t>(EXPR));      \
    break;                                                           \
  }
      WB_BIN32(I32Add, ua + ub)
      WB_BIN32(I32Sub, ua - ub)
      WB_BIN32(I32Mul, ua * ub)
      WB_BIN32(I32And, ua & ub)
      WB_BIN32(I32Or, ua | ub)
      WB_BIN32(I32Xor, ua ^ ub)
      WB_BIN32(I32Shl, ua << (ub & 31))
      WB_BIN32(I32ShrU, ua >> (ub & 31))
      WB_BIN32(I32Rotl, rotl32(ua, ub))
      WB_BIN32(I32Rotr, rotr32(ua, ub))
#undef WB_BIN32
      case Opcode::I32ShrS: {
        const uint32_t b = pop().as_u32();
        const int32_t a = stack.back().as_i32();
        stack.back() = Value::from_i32(a >> (b & 31));
        break;
      }
      case Opcode::I32DivS: {
        const int32_t b = pop().as_i32();
        const int32_t a = stack.back().as_i32();
        if (b == 0) {
          trap = Trap::IntegerDivideByZero;
          break;
        }
        if (a == INT32_MIN && b == -1) {
          trap = Trap::IntegerOverflow;
          break;
        }
        stack.back() = Value::from_i32(a / b);
        break;
      }
      case Opcode::I32DivU: {
        const uint32_t b = pop().as_u32();
        const uint32_t a = stack.back().as_u32();
        if (b == 0) {
          trap = Trap::IntegerDivideByZero;
          break;
        }
        stack.back() = Value::from_i32(static_cast<int32_t>(a / b));
        break;
      }
      case Opcode::I32RemS: {
        const int32_t b = pop().as_i32();
        const int32_t a = stack.back().as_i32();
        if (b == 0) {
          trap = Trap::IntegerDivideByZero;
          break;
        }
        stack.back() = Value::from_i32(b == -1 ? 0 : a % b);
        break;
      }
      case Opcode::I32RemU: {
        const uint32_t b = pop().as_u32();
        const uint32_t a = stack.back().as_u32();
        if (b == 0) {
          trap = Trap::IntegerDivideByZero;
          break;
        }
        stack.back() = Value::from_i32(static_cast<int32_t>(a % b));
        break;
      }

      // ---- i64 arithmetic ----
      case Opcode::I64Clz: {
        const uint64_t x = stack.back().as_u64();
        stack.back() = Value::from_i64(x == 0 ? 64 : __builtin_clzll(x));
        break;
      }
      case Opcode::I64Ctz: {
        const uint64_t x = stack.back().as_u64();
        stack.back() = Value::from_i64(x == 0 ? 64 : __builtin_ctzll(x));
        break;
      }
      case Opcode::I64Popcnt:
        stack.back() = Value::from_i64(__builtin_popcountll(stack.back().as_u64()));
        break;
#define WB_BIN64(OP, EXPR)                                           \
  case Opcode::OP: {                                                 \
    const Value bv = pop();                                          \
    const Value av = stack.back();                                   \
    const uint64_t ua = av.as_u64();                                 \
    const uint64_t ub = bv.as_u64();                                 \
    (void)ua; (void)ub;                                              \
    stack.back() = Value::from_i64(static_cast<int64_t>(EXPR));      \
    break;                                                           \
  }
      WB_BIN64(I64Add, ua + ub)
      WB_BIN64(I64Sub, ua - ub)
      WB_BIN64(I64Mul, ua * ub)
      WB_BIN64(I64And, ua & ub)
      WB_BIN64(I64Or, ua | ub)
      WB_BIN64(I64Xor, ua ^ ub)
      WB_BIN64(I64Shl, ua << (ub & 63))
      WB_BIN64(I64ShrU, ua >> (ub & 63))
      WB_BIN64(I64Rotl, rotl64(ua, ub))
      WB_BIN64(I64Rotr, rotr64(ua, ub))
#undef WB_BIN64
      case Opcode::I64ShrS: {
        const uint64_t b = pop().as_u64();
        const int64_t a = stack.back().as_i64();
        stack.back() = Value::from_i64(a >> (b & 63));
        break;
      }
      case Opcode::I64DivS: {
        const int64_t b = pop().as_i64();
        const int64_t a = stack.back().as_i64();
        if (b == 0) {
          trap = Trap::IntegerDivideByZero;
          break;
        }
        if (a == INT64_MIN && b == -1) {
          trap = Trap::IntegerOverflow;
          break;
        }
        stack.back() = Value::from_i64(a / b);
        break;
      }
      case Opcode::I64DivU: {
        const uint64_t b = pop().as_u64();
        const uint64_t a = stack.back().as_u64();
        if (b == 0) {
          trap = Trap::IntegerDivideByZero;
          break;
        }
        stack.back() = Value::from_i64(static_cast<int64_t>(a / b));
        break;
      }
      case Opcode::I64RemS: {
        const int64_t b = pop().as_i64();
        const int64_t a = stack.back().as_i64();
        if (b == 0) {
          trap = Trap::IntegerDivideByZero;
          break;
        }
        stack.back() = Value::from_i64(b == -1 ? 0 : a % b);
        break;
      }
      case Opcode::I64RemU: {
        const uint64_t b = pop().as_u64();
        const uint64_t a = stack.back().as_u64();
        if (b == 0) {
          trap = Trap::IntegerDivideByZero;
          break;
        }
        stack.back() = Value::from_i64(static_cast<int64_t>(a % b));
        break;
      }

      // ---- f32 arithmetic ----
#define WB_FUN32(OP, EXPR)                                  \
  case Opcode::OP: {                                        \
    const float a = stack.back().as_f32();                  \
    (void)a;                                                \
    stack.back() = Value::from_f32(EXPR);                   \
    break;                                                  \
  }
      WB_FUN32(F32Abs, std::fabs(a))
      WB_FUN32(F32Neg, -a)
      WB_FUN32(F32Ceil, std::ceil(a))
      WB_FUN32(F32Floor, std::floor(a))
      WB_FUN32(F32Trunc, std::trunc(a))
      WB_FUN32(F32Nearest, static_cast<float>(std::nearbyint(a)))
      WB_FUN32(F32Sqrt, std::sqrt(a))
#undef WB_FUN32
#define WB_FBIN32(OP, EXPR)                                 \
  case Opcode::OP: {                                        \
    const float b = pop().as_f32();                         \
    const float a = stack.back().as_f32();                  \
    stack.back() = Value::from_f32(EXPR);                   \
    break;                                                  \
  }
      WB_FBIN32(F32Add, a + b)
      WB_FBIN32(F32Sub, a - b)
      WB_FBIN32(F32Mul, a * b)
      WB_FBIN32(F32Div, a / b)
      WB_FBIN32(F32Min, wasm_fmin(a, b))
      WB_FBIN32(F32Max, wasm_fmax(a, b))
      WB_FBIN32(F32Copysign, std::copysign(a, b))
#undef WB_FBIN32

      // ---- f64 arithmetic ----
#define WB_FUN64(OP, EXPR)                                  \
  case Opcode::OP: {                                        \
    const double a = stack.back().as_f64();                 \
    (void)a;                                                \
    stack.back() = Value::from_f64(EXPR);                   \
    break;                                                  \
  }
      WB_FUN64(F64Abs, std::fabs(a))
      WB_FUN64(F64Neg, -a)
      WB_FUN64(F64Ceil, std::ceil(a))
      WB_FUN64(F64Floor, std::floor(a))
      WB_FUN64(F64Trunc, std::trunc(a))
      WB_FUN64(F64Nearest, std::nearbyint(a))
      WB_FUN64(F64Sqrt, std::sqrt(a))
#undef WB_FUN64
#define WB_FBIN64(OP, EXPR)                                 \
  case Opcode::OP: {                                        \
    const double b = pop().as_f64();                        \
    const double a = stack.back().as_f64();                 \
    stack.back() = Value::from_f64(EXPR);                   \
    break;                                                  \
  }
      WB_FBIN64(F64Add, a + b)
      WB_FBIN64(F64Sub, a - b)
      WB_FBIN64(F64Mul, a * b)
      WB_FBIN64(F64Div, a / b)
      WB_FBIN64(F64Min, wasm_fmin(a, b))
      WB_FBIN64(F64Max, wasm_fmax(a, b))
      WB_FBIN64(F64Copysign, std::copysign(a, b))
#undef WB_FBIN64

      // ---- Conversions ----
      case Opcode::I32WrapI64:
        stack.back() = Value::from_i32(static_cast<int32_t>(stack.back().as_i64()));
        break;
#define WB_TRUNC(OP, ITYPE, FTYPE, PUSH)                           \
  case Opcode::OP: {                                               \
    ITYPE out;                                                     \
    if (!trunc_checked<ITYPE>(stack.back().as_##FTYPE(), out)) {   \
      trap = Trap::InvalidConversion;                              \
      break;                                                       \
    }                                                              \
    stack.back() = PUSH;                                           \
    break;                                                         \
  }
      WB_TRUNC(I32TruncF32S, int32_t, f32, Value::from_i32(out))
      WB_TRUNC(I32TruncF32U, uint32_t, f32, Value::from_i32(static_cast<int32_t>(out)))
      WB_TRUNC(I32TruncF64S, int32_t, f64, Value::from_i32(out))
      WB_TRUNC(I32TruncF64U, uint32_t, f64, Value::from_i32(static_cast<int32_t>(out)))
      WB_TRUNC(I64TruncF32S, int64_t, f32, Value::from_i64(out))
      WB_TRUNC(I64TruncF32U, uint64_t, f32, Value::from_i64(static_cast<int64_t>(out)))
      WB_TRUNC(I64TruncF64S, int64_t, f64, Value::from_i64(out))
      WB_TRUNC(I64TruncF64U, uint64_t, f64, Value::from_i64(static_cast<int64_t>(out)))
#undef WB_TRUNC
      case Opcode::I64ExtendI32S:
        stack.back() = Value::from_i64(stack.back().as_i32());
        break;
      case Opcode::I64ExtendI32U:
        stack.back() = Value::from_i64(static_cast<int64_t>(stack.back().as_u32()));
        break;
      case Opcode::F32ConvertI32S:
        stack.back() = Value::from_f32(static_cast<float>(stack.back().as_i32()));
        break;
      case Opcode::F32ConvertI32U:
        stack.back() = Value::from_f32(static_cast<float>(stack.back().as_u32()));
        break;
      case Opcode::F32ConvertI64S:
        stack.back() = Value::from_f32(static_cast<float>(stack.back().as_i64()));
        break;
      case Opcode::F32ConvertI64U:
        stack.back() = Value::from_f32(static_cast<float>(stack.back().as_u64()));
        break;
      case Opcode::F32DemoteF64:
        stack.back() = Value::from_f32(static_cast<float>(stack.back().as_f64()));
        break;
      case Opcode::F64ConvertI32S:
        stack.back() = Value::from_f64(static_cast<double>(stack.back().as_i32()));
        break;
      case Opcode::F64ConvertI32U:
        stack.back() = Value::from_f64(static_cast<double>(stack.back().as_u32()));
        break;
      case Opcode::F64ConvertI64S:
        stack.back() = Value::from_f64(static_cast<double>(stack.back().as_i64()));
        break;
      case Opcode::F64ConvertI64U:
        stack.back() = Value::from_f64(static_cast<double>(stack.back().as_u64()));
        break;
      case Opcode::F64PromoteF32:
        stack.back() = Value::from_f64(static_cast<double>(stack.back().as_f32()));
        break;
      case Opcode::I32ReinterpretF32:
      case Opcode::I64ReinterpretF64:
      case Opcode::F32ReinterpretI32:
      case Opcode::F64ReinterpretI64:
        // Bits are already raw in the value slot. For f32<->i32 the upper
        // bits are zero either way.
        break;
    }

    if (trap != Trap::None) break;
    ++pc;
  }

  // Trap / fuel-out exit: close the spans of every frame still on the
  // stack so the trace stays well-nested.
  if (tracer_) {
    for (size_t i = frames.size(); i-- > 0;) {
      tracer_->end(prof::Cat::WasmFunc, func_trace_names_[frames[i].fidx],
                   stats_.cost_ps + cost);
    }
  }

  flush_stats();
  return {trap, {}};
}

// --- Quickened threaded execution -----------------------------------------
//
// Executes the pre-translated QCode stream (quicken.h). Dispatch is
// direct-threaded (computed goto) under GCC/Clang; WB_THREADED_DISPATCH=0
// selects the portable switch fallback. Every QInstr is charged from its
// constituent side table (cls/cat, nops) before its handler runs, exactly
// as the classic loop charges each Instr before executing it, so cost_ps,
// ops_executed, arith_counts, fuel accounting, tier-up timing, and tracer
// timestamps are bit-identical on every program.

#ifndef WB_THREADED_DISPATCH
#if defined(__GNUC__) || defined(__clang__)
#define WB_THREADED_DISPATCH 1
#else
#define WB_THREADED_DISPATCH 0
#endif
#endif

namespace {
struct QCallFrame {
  uint32_t fidx;         // defined-function index
  uint32_t qpc;
  uint32_t locals_base;
  uint32_t stack_base;   // value-stack height on entry (params removed)
};
}  // namespace

InvokeResult Instance::run_quickened(uint32_t defined_index,
                                     std::span<const Value> args) {
  const uint32_t num_imports = static_cast<uint32_t>(module_.imports.size());
  constexpr uint8_t kCatNone = static_cast<uint8_t>(ArithCat::None);

  std::vector<Value> stack;
  stack.reserve(256);
  std::vector<Value> locals;
  locals.reserve(256);
  std::vector<QCallFrame> frames;
  frames.reserve(64);

  uint64_t cost = 0;
  uint64_t ops = 0;
  const uint64_t fuel = fuel_;
  Trap trap = Trap::None;
  uint32_t callee = 0;

  // Arith-category accounting: each dispatch adds the QInstr's packed
  // per-lane counts (one byte lane per ArithCat, lane None discarded) into
  // a single u64. Every add contributes exactly 4 across the lanes, so
  // after 63 adds no lane can exceed 252; the budget countdown unpacks
  // into the wide accumulators before any lane could saturate.
  uint64_t arith[static_cast<size_t>(ArithCat::kCount)] = {};
  uint64_t cat_acc = 0;
  uint32_t cat_budget = 63;

  // Cause attribution rides the same byte-lane trick: each dispatch adds
  // the QInstr's packed per-OpClass lane counts (classes 0-7 in the lo
  // word, 8-14 plus the discarded pad lane in the hi word) and the shared
  // 63-dispatch budget unpacks both words before any lane can saturate.
  // Lanes flush into the *active tier's* class counts, so set_costs must
  // drain them before switching tables.
  uint64_t cls_acc_lo = 0;
  uint64_t cls_acc_hi = 0;
  uint64_t* ccnt = attr_.class_counts[0].data();

  auto flush_cls = [&] {
    for (size_t i = 0; i < 8; ++i) ccnt[i] += (cls_acc_lo >> (8 * i)) & 0xff;
    for (size_t i = 8; i < kOpClassCount; ++i) {
      ccnt[i] += (cls_acc_hi >> (8 * (i - 8))) & 0xff;
    }
    cls_acc_lo = cls_acc_hi = 0;
  };

  auto flush_cats = [&] {
    for (size_t i = 0; i < kArithCatCount; ++i) {
      arith[i] += (cat_acc >> (8 * i)) & 0xff;
    }
    cat_acc = 0;
    cat_budget = 63;
    flush_cls();
  };

  auto flush_stats = [&] {
    flush_cats();
    stats_.cost_ps += cost;
    stats_.ops_executed += ops;
    for (size_t i = 0; i < kArithCatCount; ++i) stats_.arith_counts[i] += arith[i];
  };

  // Cached per-frame execution state. `lcosts` is the active tier's cost
  // table plus a zero-cost pad slot (kQClsPad), re-copied only when the
  // active table actually changes (frame switch onto a different tier, or
  // a tier-up on a loop back-edge).
  const QFunc* qf = nullptr;
  const QInstr* qcode = nullptr;
  const uint64_t* costs = nullptr;
  uint64_t lcosts[kOpClassCount + 1];
  lcosts[kOpClassCount] = 0;
  uint32_t qpc = 0;
  uint32_t locals_base = 0;
  uint32_t stack_base = 0;
  const QInstr* q = nullptr;

  auto set_costs = [&](size_t tier) {
    const uint64_t* table = cost_tables_[tier].data();
    if (table == costs) return;
    flush_cls();  // pending lanes were priced from the outgoing tier
    costs = table;
    ccnt = attr_.class_counts[tier].data();
    std::memcpy(lcosts, table, sizeof(uint64_t) * kOpClassCount);
  };

  auto cache_frame = [&] {
    const QCallFrame& f = frames.back();
    qf = &qfuncs_[f.fidx];
    qcode = qf->code.data();
    set_costs(static_cast<size_t>(func_state_[f.fidx].tier));
    qpc = f.qpc;
    locals_base = f.locals_base;
    stack_base = f.stack_base;
  };

  // How an enter_function attempt resolved: a new quickened frame was
  // pushed, the callee ran to completion inside the JIT (result already on
  // the stack), or it trapped (depth limit, or a trap inside JIT code).
  enum class Enter : uint8_t { Frame, JitDone, Trapped };

  auto enter_function = [&](uint32_t d, std::span<const Value> initial_args) -> Enter {
    if (frames.size() >= kMaxCallDepth) {
      trap = Trap::CallStackExhausted;
      return Enter::Trapped;
    }
    // Begin the span first so a tier-up compile pause on this entry lands
    // inside the entered function's self time (same order as the classic
    // loop's enter_function).
    if (tracer_) {
      tracer_->begin(prof::Cat::WasmFunc, func_trace_names_[d], stats_.cost_ps + cost);
    }
    maybe_tier_up(d, stats_.cost_ps + cost);
    ++stats_.calls;
    const FuncMeta& m = metas_[d];
    // The JIT fast path: optimizing-tier leaf functions run to completion
    // in native code. Charges accumulate in a per-block side table plus
    // direct lanes and are merged here, so every reported metric is
    // bit-identical to the quickened (and classic) loops.
    if (jit_enabled_ && func_state_[d].tier == Tier::Optimizing) {
      if (jit::CompiledFunction* cf = jit_compiled(d)) {
        uint64_t* jlocals = cf->locals_scratch();
        if (!initial_args.empty() || m.num_params == 0) {
          for (size_t i = 0; i < initial_args.size(); ++i) {
            jlocals[i] = initial_args[i].bits;
          }
        } else {
          for (uint32_t i = 0; i < m.num_params; ++i) {
            jlocals[i] = stack[stack.size() - m.num_params + i].bits;
          }
          stack.resize(stack.size() - m.num_params);
        }
        std::fill(jlocals + m.num_params, jlocals + m.num_locals, uint64_t{0});
        jit::JitContext ctx;
        ctx.ops = ops;
        ctx.fuel = fuel;
        if (memory_) {
          ctx.mem_size = memory_->size_bytes();
          ctx.mem_base = memory_->bytes().data();
        }
        ctx.stack_base = cf->stack_scratch();
        ctx.locals = jlocals;
        ctx.globals = reinterpret_cast<uint64_t*>(globals_.data());
        ctx.block_exec = cf->block_exec();
        ctx.fn = cf;
        ctx.opt_costs = cost_tables_[1].data();
        cf->run(ctx);
        ops = ctx.ops;
        // Merge the charge side table: Σ exec[b]·BlockCharge[b] plus the
        // direct lanes the trap helpers charged per-QInstr. Additions into
        // the wide counters commute with the dispatch loop's pending
        // packed lanes, so no flush is needed here.
        uint64_t jcost = ctx.direct_cost_ps;
        uint64_t* opt_ccnt = attr_.class_counts[1].data();
        const auto& blocks = cf->blocks();
        std::span<uint64_t> exec = cf->block_exec_span();
        for (size_t b = 0; b < blocks.size(); ++b) {
          const uint64_t e = exec[b];
          if (e == 0) continue;
          exec[b] = 0;
          const jit::BlockCharge& blk = blocks[b];
          jcost += e * blk.cost_ps;
          for (size_t c = 0; c < kOpClassCount; ++c) {
            opt_ccnt[c] += e * blk.cls_counts[c];
          }
          for (size_t c = 0; c < kArithCatCount; ++c) {
            stats_.arith_counts[c] += e * blk.cat_counts[c];
          }
        }
        for (size_t c = 0; c < kOpClassCount; ++c) {
          opt_ccnt[c] += ctx.direct_cls[c];
        }
        for (size_t c = 0; c < kArithCatCount; ++c) {
          stats_.arith_counts[c] += ctx.direct_cat[c];
        }
        cost += jcost;
        if (ctx.trap != 0) {
          trap = static_cast<Trap>(ctx.trap);
          if (tracer_) {
            tracer_->end(prof::Cat::WasmFunc, func_trace_names_[d],
                         stats_.cost_ps + cost);
          }
          return Enter::Trapped;
        }
        if (m.result_count > 0) stack.push_back(Value{ctx.result_bits});
        if (tracer_) {
          tracer_->end(prof::Cat::WasmFunc, func_trace_names_[d],
                       stats_.cost_ps + cost);
        }
        return Enter::JitDone;
      }
    }
    QCallFrame f;
    f.fidx = d;
    f.qpc = 0;
    f.locals_base = static_cast<uint32_t>(locals.size());
    if (!initial_args.empty() || m.num_params == 0) {
      f.stack_base = static_cast<uint32_t>(stack.size());
      locals.insert(locals.end(), initial_args.begin(), initial_args.end());
    } else {
      f.stack_base = static_cast<uint32_t>(stack.size()) - m.num_params;
      locals.insert(locals.end(), stack.end() - m.num_params, stack.end());
      stack.resize(f.stack_base);
    }
    locals.resize(f.locals_base + m.num_locals, Value{});
    frames.push_back(f);
    cache_frame();
    return Enter::Frame;
  };

  auto pop = [&]() -> Value {
    Value v = stack.back();
    stack.pop_back();
    return v;
  };

  {
    const Enter e = enter_function(defined_index, args);
    if (e == Enter::Trapped) {
      flush_stats();
      return {trap, {}};
    }
    if (e == Enter::JitDone) {
      flush_stats();
      InvokeResult result;
      result.trap = Trap::None;
      if (metas_[defined_index].result_count > 0) result.value = stack.back();
      return result;
    }
  }

#if WB_THREADED_DISPATCH
  static const void* kQLabels[] = {
#define WB_QLBL(name) &&lbl_##name,
      WB_QOP_LIST(WB_QLBL)
#undef WB_QLBL
  };
#define WB_CASE(name) lbl_##name:
#else
#define WB_CASE(name) case QOp::name:
#endif
#define WB_NEXT()  \
  do {             \
    ++qpc;         \
    goto dispatch; \
  } while (0)
#define WB_JUMP(target) \
  do {                  \
    qpc = (target);     \
    goto dispatch;      \
  } while (0)

dispatch:
  q = qcode + qpc;
  if (ops + q->nops > fuel) goto fuel_out;
  ops += q->nops;
  // Branchless charge: unused slots carry the zero-cost pad class and the
  // discarded None category (see kQClsPad/kQCatPad in quicken.h).
  cost += lcosts[q->cls[0]] + lcosts[q->cls[1]] + lcosts[q->cls[2]] +
          lcosts[q->cls[3]];
  cat_acc += q->cat_packed;
  cls_acc_lo += q->cls_packed_lo;
  cls_acc_hi += q->cls_packed_hi;
  if (--cat_budget == 0) flush_cats();
#if WB_THREADED_DISPATCH
  goto* kQLabels[q->op];
#else
  switch (q->qop()) {
#endif

  // ---- Specials ----
  WB_CASE(ChargeOnly) WB_NEXT();  // charging above was the whole effect
  WB_CASE(Unreachable) {
    trap = Trap::Unreachable;
    goto trapped;
  }
  WB_CASE(If) {
    if (pop().as_i32() == 0) WB_JUMP(q->a);
    WB_NEXT();
  }
  WB_CASE(Jump) WB_JUMP(q->a);
  WB_CASE(Br) goto take_branch;
  WB_CASE(BrIf) {
    if (pop().as_i32() != 0) goto take_branch;
    WB_NEXT();
  }
  WB_CASE(BrTable) {
    const uint32_t idx = pop().as_u32();
    const std::vector<QBrTarget>& targets = qf->br_tables[q->a];
    const QBrTarget& t = idx < targets.size() - 1 ? targets[idx] : targets.back();
    if (t.is_loop) {
      stack.resize(stack_base + t.height);
      const uint32_t d = frames.back().fidx;
      const Tier before = func_state_[d].tier;
      maybe_tier_up(d, stats_.cost_ps + cost);
      if (func_state_[d].tier != before) {
        // Route through set_costs so lcosts (and the attribution lanes)
        // are refreshed with the new tier, exactly like take_branch below.
        set_costs(static_cast<size_t>(func_state_[d].tier));
      }
      WB_JUMP(t.qpc);
    }
    const uint32_t target = stack_base + t.height;
    if (t.arity) stack[target] = stack.back();
    stack.resize(target + t.arity);
    WB_JUMP(t.qpc);
  }
  WB_CASE(Return) {
    const uint32_t arity = q->a;
    for (uint32_t i = 0; i < arity; ++i) {
      stack[stack_base + i] = stack[stack.size() - arity + i];
    }
    stack.resize(stack_base + arity);
    WB_JUMP(q->b);  // the FuncReturn sentinel (the final End is skipped)
  }
  WB_CASE(FuncReturn) {
    const QCallFrame f = frames.back();
    if (tracer_) {
      tracer_->end(prof::Cat::WasmFunc, func_trace_names_[f.fidx],
                   stats_.cost_ps + cost);
    }
    frames.pop_back();
    locals.resize(f.locals_base);
    if (frames.empty()) {
      flush_stats();
      InvokeResult result;
      result.trap = Trap::None;
      if (metas_[f.fidx].result_count > 0) result.value = stack.back();
      return result;
    }
    cache_frame();  // resumes at the caller's saved qpc
    goto dispatch;
  }
  WB_CASE(Call) {
    callee = q->a;
    goto do_call;
  }
  WB_CASE(CallIndirect) {
    const uint32_t entry = pop().as_u32();
    if (entry >= table_.size() || table_[entry] == UINT32_MAX) {
      trap = Trap::UndefinedElement;
      goto trapped;
    }
    callee = table_[entry];
    const FuncType& expect = module_.types[q->a];
    if (!(module_.func_type(callee) == expect)) {
      trap = Trap::IndirectCallTypeMismatch;
      goto trapped;
    }
    goto do_call;
  }
do_call: {
  if (callee < num_imports) {
    const FuncType& type = module_.types[module_.imports[callee].type_index];
    const size_t nargs = type.params.size();
    Value host_args_buf[16];
    if (nargs > 16) {
      trap = Trap::HostError;  // host functions take at most 16 args
      goto trapped;
    }
    for (size_t i = 0; i < nargs; ++i) {
      host_args_buf[nargs - 1 - i] = pop();
    }
    Value result;
    ++stats_.host_calls;
    if (tracer_) {
      tracer_->instant(prof::Cat::HostCall, import_trace_names_[callee],
                       stats_.cost_ps + cost);
    }
    const Trap t =
        host_fns_[callee](std::span<const Value>(host_args_buf, nargs), &result);
    if (t != Trap::None) {
      trap = t;
      goto trapped;
    }
    if (recorder_) {
      record_host_call(recorder_, callee,
                       std::span<const Value>(host_args_buf, nargs), result,
                       !type.results.empty());
    }
    if (!type.results.empty()) stack.push_back(result);
    WB_NEXT();
  }
  frames.back().qpc = qpc + 1;
  {
    const Enter e = enter_function(callee - num_imports, {});
    if (e == Enter::Trapped) goto trapped;
    // JitDone: the callee ran to completion natively; resume the caller
    // at the instruction after the call (cache_frame reloads qpc+1).
    if (e == Enter::JitDone) cache_frame();
  }
  goto dispatch;
}
take_branch: {
  if (q->flags & 1) {
    // Loop back-edge: no values carried, and it contributes to hotness.
    stack.resize(stack_base + q->b);
    const uint32_t d = frames.back().fidx;
    const Tier before = func_state_[d].tier;
    maybe_tier_up(d, stats_.cost_ps + cost);
    if (func_state_[d].tier != before) {
      set_costs(static_cast<size_t>(func_state_[d].tier));
    }
    WB_JUMP(q->a);
  }
  const uint32_t target = stack_base + q->b;
  if (q->flags & 2) stack[target] = stack.back();
  stack.resize(target + ((q->flags >> 1) & 1));
  WB_JUMP(q->a);
}
  WB_CASE(Const) {
    stack.push_back(q->val);
    WB_NEXT();
  }

  // ---- Parametric / variable access ----
  WB_CASE(Drop) {
    stack.pop_back();
    WB_NEXT();
  }
  WB_CASE(Select) {
    const int32_t cond = pop().as_i32();
    const Value b = pop();
    const Value a = pop();
    stack.push_back(cond != 0 ? a : b);
    WB_NEXT();
  }
  WB_CASE(LocalGet) {
    stack.push_back(locals[locals_base + q->a]);
    WB_NEXT();
  }
  WB_CASE(LocalSet) {
    locals[locals_base + q->a] = pop();
    WB_NEXT();
  }
  WB_CASE(LocalTee) {
    locals[locals_base + q->a] = stack.back();
    WB_NEXT();
  }
  WB_CASE(GlobalGet) {
    stack.push_back(globals_[q->a]);
    WB_NEXT();
  }
  WB_CASE(GlobalSet) {
    globals_[q->a] = pop();
    WB_NEXT();
  }

  // ---- Memory ----
#define WB_QLOAD(name, CTYPE, PUSH)             \
  WB_CASE(name) {                               \
    const uint32_t addr = pop().as_u32();       \
    CTYPE v;                                    \
    if (!memory_->load<CTYPE>(addr, q->b, v)) { \
      trap = Trap::MemoryOutOfBounds;           \
      goto trapped;                             \
    }                                           \
    stack.push_back(PUSH);                      \
    WB_NEXT();                                  \
  }
  WB_QLOAD(I32Load, int32_t, Value::from_i32(v))
  WB_QLOAD(I64Load, int64_t, Value::from_i64(v))
  WB_QLOAD(F32Load, float, Value::from_f32(v))
  WB_QLOAD(F64Load, double, Value::from_f64(v))
  WB_QLOAD(I32Load8S, int8_t, Value::from_i32(v))
  WB_QLOAD(I32Load8U, uint8_t, Value::from_i32(static_cast<int32_t>(v)))
  WB_QLOAD(I32Load16S, int16_t, Value::from_i32(v))
  WB_QLOAD(I32Load16U, uint16_t, Value::from_i32(static_cast<int32_t>(v)))
#undef WB_QLOAD

#define WB_QSTORE(name, CTYPE, GET)               \
  WB_CASE(name) {                                 \
    const Value val = pop();                      \
    const uint32_t addr = pop().as_u32();         \
    if (!memory_->store<CTYPE>(addr, q->b, GET)) { \
      trap = Trap::MemoryOutOfBounds;             \
      goto trapped;                               \
    }                                             \
    WB_NEXT();                                    \
  }
  WB_QSTORE(I32Store, int32_t, val.as_i32())
  WB_QSTORE(I64Store, int64_t, val.as_i64())
  WB_QSTORE(F32Store, float, val.as_f32())
  WB_QSTORE(F64Store, double, val.as_f64())
  WB_QSTORE(I32Store8, uint8_t, static_cast<uint8_t>(val.as_u32()))
  WB_QSTORE(I32Store16, uint16_t, static_cast<uint16_t>(val.as_u32()))
#undef WB_QSTORE

  WB_CASE(MemorySize) {
    stack.push_back(Value::from_i32(static_cast<int32_t>(memory_->size_pages())));
    WB_NEXT();
  }
  WB_CASE(MemoryGrow) {
    const uint32_t delta = pop().as_u32();
    const int32_t prev_pages = memory_->grow(delta);
    stack.push_back(Value::from_i32(prev_pages));
    cost += grow_cost_ps_;
    attr_.add_direct(attr::Cause::MemoryGrowth, grow_cost_ps_);
    ++stats_.memory_grows;
    if (tracer_) {
      tracer_->instant(prof::Cat::MemoryGrow, grow_trace_name_,
                       stats_.cost_ps + cost, delta);
    }
    if (recorder_) recorder_->wasm_memory_grow(delta, prev_pages);
    WB_NEXT();
  }

  // ---- i32/i64 compare ----
  WB_CASE(I32Eqz) {
    stack.back() = Value::from_i32(stack.back().as_i32() == 0);
    WB_NEXT();
  }
#define WB_QCMP32(name, EXPR)                       \
  WB_CASE(name) {                                   \
    const Value bv = pop();                         \
    const Value av = stack.back();                  \
    const int32_t a = av.as_i32();                  \
    const int32_t b = bv.as_i32();                  \
    const uint32_t ua = av.as_u32();                \
    const uint32_t ub = bv.as_u32();                \
    (void)a; (void)b; (void)ua; (void)ub;           \
    stack.back() = Value::from_i32((EXPR) ? 1 : 0); \
    WB_NEXT();                                      \
  }
  WB_QCMP32(I32Eq, a == b)
  WB_QCMP32(I32Ne, a != b)
  WB_QCMP32(I32LtS, a < b)
  WB_QCMP32(I32LtU, ua < ub)
  WB_QCMP32(I32GtS, a > b)
  WB_QCMP32(I32GtU, ua > ub)
  WB_QCMP32(I32LeS, a <= b)
  WB_QCMP32(I32LeU, ua <= ub)
  WB_QCMP32(I32GeS, a >= b)
  WB_QCMP32(I32GeU, ua >= ub)
#undef WB_QCMP32

  WB_CASE(I64Eqz) {
    stack.back() = Value::from_i32(stack.back().as_i64() == 0);
    WB_NEXT();
  }
#define WB_QCMP64(name, EXPR)                       \
  WB_CASE(name) {                                   \
    const Value bv = pop();                         \
    const Value av = stack.back();                  \
    const int64_t a = av.as_i64();                  \
    const int64_t b = bv.as_i64();                  \
    const uint64_t ua = av.as_u64();                \
    const uint64_t ub = bv.as_u64();                \
    (void)a; (void)b; (void)ua; (void)ub;           \
    stack.back() = Value::from_i32((EXPR) ? 1 : 0); \
    WB_NEXT();                                      \
  }
  WB_QCMP64(I64Eq, a == b)
  WB_QCMP64(I64Ne, a != b)
  WB_QCMP64(I64LtS, a < b)
  WB_QCMP64(I64LtU, ua < ub)
  WB_QCMP64(I64GtS, a > b)
  WB_QCMP64(I64GtU, ua > ub)
  WB_QCMP64(I64LeS, a <= b)
  WB_QCMP64(I64LeU, ua <= ub)
  WB_QCMP64(I64GeS, a >= b)
  WB_QCMP64(I64GeU, ua >= ub)
#undef WB_QCMP64

#define WB_QFCMP(name, CTYPE, SUFFIX, EXPR)      \
  WB_CASE(name) {                                \
    const CTYPE b = pop().as_##SUFFIX();         \
    const CTYPE a = stack.back().as_##SUFFIX();  \
    stack.back() = Value::from_i32(EXPR);        \
    WB_NEXT();                                   \
  }
  WB_QFCMP(F32Eq, float, f32, a == b)
  WB_QFCMP(F32Ne, float, f32, a != b)
  WB_QFCMP(F32Lt, float, f32, a < b)
  WB_QFCMP(F32Gt, float, f32, a > b)
  WB_QFCMP(F32Le, float, f32, a <= b)
  WB_QFCMP(F32Ge, float, f32, a >= b)
  WB_QFCMP(F64Eq, double, f64, a == b)
  WB_QFCMP(F64Ne, double, f64, a != b)
  WB_QFCMP(F64Lt, double, f64, a < b)
  WB_QFCMP(F64Gt, double, f64, a > b)
  WB_QFCMP(F64Le, double, f64, a <= b)
  WB_QFCMP(F64Ge, double, f64, a >= b)
#undef WB_QFCMP

  // ---- i32 arithmetic ----
  WB_CASE(I32Clz) {
    const uint32_t x = stack.back().as_u32();
    stack.back() = Value::from_i32(x == 0 ? 32 : __builtin_clz(x));
    WB_NEXT();
  }
  WB_CASE(I32Ctz) {
    const uint32_t x = stack.back().as_u32();
    stack.back() = Value::from_i32(x == 0 ? 32 : __builtin_ctz(x));
    WB_NEXT();
  }
  WB_CASE(I32Popcnt) {
    stack.back() = Value::from_i32(__builtin_popcount(stack.back().as_u32()));
    WB_NEXT();
  }
#define WB_QBIN32(name, EXPR)                                   \
  WB_CASE(name) {                                               \
    const Value bv = pop();                                     \
    const Value av = stack.back();                              \
    const uint32_t ua = av.as_u32();                            \
    const uint32_t ub = bv.as_u32();                            \
    (void)ua; (void)ub;                                         \
    stack.back() = Value::from_i32(static_cast<int32_t>(EXPR)); \
    WB_NEXT();                                                  \
  }
  WB_QBIN32(I32Add, ua + ub)
  WB_QBIN32(I32Sub, ua - ub)
  WB_QBIN32(I32Mul, ua * ub)
  WB_QBIN32(I32And, ua & ub)
  WB_QBIN32(I32Or, ua | ub)
  WB_QBIN32(I32Xor, ua ^ ub)
  WB_QBIN32(I32Shl, ua << (ub & 31))
  WB_QBIN32(I32ShrU, ua >> (ub & 31))
  WB_QBIN32(I32Rotl, rotl32(ua, ub))
  WB_QBIN32(I32Rotr, rotr32(ua, ub))
#undef WB_QBIN32
  WB_CASE(I32ShrS) {
    const uint32_t b = pop().as_u32();
    const int32_t a = stack.back().as_i32();
    stack.back() = Value::from_i32(a >> (b & 31));
    WB_NEXT();
  }
  WB_CASE(I32DivS) {
    const int32_t b = pop().as_i32();
    const int32_t a = stack.back().as_i32();
    if (b == 0) {
      trap = Trap::IntegerDivideByZero;
      goto trapped;
    }
    if (a == INT32_MIN && b == -1) {
      trap = Trap::IntegerOverflow;
      goto trapped;
    }
    stack.back() = Value::from_i32(a / b);
    WB_NEXT();
  }
  WB_CASE(I32DivU) {
    const uint32_t b = pop().as_u32();
    const uint32_t a = stack.back().as_u32();
    if (b == 0) {
      trap = Trap::IntegerDivideByZero;
      goto trapped;
    }
    stack.back() = Value::from_i32(static_cast<int32_t>(a / b));
    WB_NEXT();
  }
  WB_CASE(I32RemS) {
    const int32_t b = pop().as_i32();
    const int32_t a = stack.back().as_i32();
    if (b == 0) {
      trap = Trap::IntegerDivideByZero;
      goto trapped;
    }
    stack.back() = Value::from_i32(b == -1 ? 0 : a % b);
    WB_NEXT();
  }
  WB_CASE(I32RemU) {
    const uint32_t b = pop().as_u32();
    const uint32_t a = stack.back().as_u32();
    if (b == 0) {
      trap = Trap::IntegerDivideByZero;
      goto trapped;
    }
    stack.back() = Value::from_i32(static_cast<int32_t>(a % b));
    WB_NEXT();
  }

  // ---- i64 arithmetic ----
  WB_CASE(I64Clz) {
    const uint64_t x = stack.back().as_u64();
    stack.back() = Value::from_i64(x == 0 ? 64 : __builtin_clzll(x));
    WB_NEXT();
  }
  WB_CASE(I64Ctz) {
    const uint64_t x = stack.back().as_u64();
    stack.back() = Value::from_i64(x == 0 ? 64 : __builtin_ctzll(x));
    WB_NEXT();
  }
  WB_CASE(I64Popcnt) {
    stack.back() = Value::from_i64(__builtin_popcountll(stack.back().as_u64()));
    WB_NEXT();
  }
#define WB_QBIN64(name, EXPR)                                   \
  WB_CASE(name) {                                               \
    const Value bv = pop();                                     \
    const Value av = stack.back();                              \
    const uint64_t ua = av.as_u64();                            \
    const uint64_t ub = bv.as_u64();                            \
    (void)ua; (void)ub;                                         \
    stack.back() = Value::from_i64(static_cast<int64_t>(EXPR)); \
    WB_NEXT();                                                  \
  }
  WB_QBIN64(I64Add, ua + ub)
  WB_QBIN64(I64Sub, ua - ub)
  WB_QBIN64(I64Mul, ua * ub)
  WB_QBIN64(I64And, ua & ub)
  WB_QBIN64(I64Or, ua | ub)
  WB_QBIN64(I64Xor, ua ^ ub)
  WB_QBIN64(I64Shl, ua << (ub & 63))
  WB_QBIN64(I64ShrU, ua >> (ub & 63))
  WB_QBIN64(I64Rotl, rotl64(ua, ub))
  WB_QBIN64(I64Rotr, rotr64(ua, ub))
#undef WB_QBIN64
  WB_CASE(I64ShrS) {
    const uint64_t b = pop().as_u64();
    const int64_t a = stack.back().as_i64();
    stack.back() = Value::from_i64(a >> (b & 63));
    WB_NEXT();
  }
  WB_CASE(I64DivS) {
    const int64_t b = pop().as_i64();
    const int64_t a = stack.back().as_i64();
    if (b == 0) {
      trap = Trap::IntegerDivideByZero;
      goto trapped;
    }
    if (a == INT64_MIN && b == -1) {
      trap = Trap::IntegerOverflow;
      goto trapped;
    }
    stack.back() = Value::from_i64(a / b);
    WB_NEXT();
  }
  WB_CASE(I64DivU) {
    const uint64_t b = pop().as_u64();
    const uint64_t a = stack.back().as_u64();
    if (b == 0) {
      trap = Trap::IntegerDivideByZero;
      goto trapped;
    }
    stack.back() = Value::from_i64(static_cast<int64_t>(a / b));
    WB_NEXT();
  }
  WB_CASE(I64RemS) {
    const int64_t b = pop().as_i64();
    const int64_t a = stack.back().as_i64();
    if (b == 0) {
      trap = Trap::IntegerDivideByZero;
      goto trapped;
    }
    stack.back() = Value::from_i64(b == -1 ? 0 : a % b);
    WB_NEXT();
  }
  WB_CASE(I64RemU) {
    const uint64_t b = pop().as_u64();
    const uint64_t a = stack.back().as_u64();
    if (b == 0) {
      trap = Trap::IntegerDivideByZero;
      goto trapped;
    }
    stack.back() = Value::from_i64(static_cast<int64_t>(a % b));
    WB_NEXT();
  }

  // ---- f32 / f64 arithmetic ----
#define WB_QFUN32(name, EXPR)             \
  WB_CASE(name) {                         \
    const float a = stack.back().as_f32(); \
    (void)a;                              \
    stack.back() = Value::from_f32(EXPR); \
    WB_NEXT();                            \
  }
  WB_QFUN32(F32Abs, std::fabs(a))
  WB_QFUN32(F32Neg, -a)
  WB_QFUN32(F32Ceil, std::ceil(a))
  WB_QFUN32(F32Floor, std::floor(a))
  WB_QFUN32(F32Trunc, std::trunc(a))
  WB_QFUN32(F32Nearest, static_cast<float>(std::nearbyint(a)))
  WB_QFUN32(F32Sqrt, std::sqrt(a))
#undef WB_QFUN32
#define WB_QFBIN32(name, EXPR)             \
  WB_CASE(name) {                          \
    const float b = pop().as_f32();        \
    const float a = stack.back().as_f32(); \
    stack.back() = Value::from_f32(EXPR);  \
    WB_NEXT();                             \
  }
  WB_QFBIN32(F32Add, a + b)
  WB_QFBIN32(F32Sub, a - b)
  WB_QFBIN32(F32Mul, a * b)
  WB_QFBIN32(F32Div, a / b)
  WB_QFBIN32(F32Min, wasm_fmin(a, b))
  WB_QFBIN32(F32Max, wasm_fmax(a, b))
  WB_QFBIN32(F32Copysign, std::copysign(a, b))
#undef WB_QFBIN32
#define WB_QFUN64(name, EXPR)               \
  WB_CASE(name) {                           \
    const double a = stack.back().as_f64(); \
    (void)a;                                \
    stack.back() = Value::from_f64(EXPR);   \
    WB_NEXT();                              \
  }
  WB_QFUN64(F64Abs, std::fabs(a))
  WB_QFUN64(F64Neg, -a)
  WB_QFUN64(F64Ceil, std::ceil(a))
  WB_QFUN64(F64Floor, std::floor(a))
  WB_QFUN64(F64Trunc, std::trunc(a))
  WB_QFUN64(F64Nearest, std::nearbyint(a))
  WB_QFUN64(F64Sqrt, std::sqrt(a))
#undef WB_QFUN64
#define WB_QFBIN64(name, EXPR)              \
  WB_CASE(name) {                           \
    const double b = pop().as_f64();        \
    const double a = stack.back().as_f64(); \
    stack.back() = Value::from_f64(EXPR);   \
    WB_NEXT();                              \
  }
  WB_QFBIN64(F64Add, a + b)
  WB_QFBIN64(F64Sub, a - b)
  WB_QFBIN64(F64Mul, a * b)
  WB_QFBIN64(F64Div, a / b)
  WB_QFBIN64(F64Min, wasm_fmin(a, b))
  WB_QFBIN64(F64Max, wasm_fmax(a, b))
  WB_QFBIN64(F64Copysign, std::copysign(a, b))
#undef WB_QFBIN64

  // ---- Conversions ----
  WB_CASE(I32WrapI64) {
    stack.back() = Value::from_i32(static_cast<int32_t>(stack.back().as_i64()));
    WB_NEXT();
  }
#define WB_QTRUNC(name, ITYPE, FTYPE, PUSH)                    \
  WB_CASE(name) {                                              \
    ITYPE out;                                                 \
    if (!trunc_checked<ITYPE>(stack.back().as_##FTYPE(), out)) { \
      trap = Trap::InvalidConversion;                          \
      goto trapped;                                            \
    }                                                          \
    stack.back() = PUSH;                                       \
    WB_NEXT();                                                 \
  }
  WB_QTRUNC(I32TruncF32S, int32_t, f32, Value::from_i32(out))
  WB_QTRUNC(I32TruncF32U, uint32_t, f32, Value::from_i32(static_cast<int32_t>(out)))
  WB_QTRUNC(I32TruncF64S, int32_t, f64, Value::from_i32(out))
  WB_QTRUNC(I32TruncF64U, uint32_t, f64, Value::from_i32(static_cast<int32_t>(out)))
  WB_QTRUNC(I64TruncF32S, int64_t, f32, Value::from_i64(out))
  WB_QTRUNC(I64TruncF32U, uint64_t, f32, Value::from_i64(static_cast<int64_t>(out)))
  WB_QTRUNC(I64TruncF64S, int64_t, f64, Value::from_i64(out))
  WB_QTRUNC(I64TruncF64U, uint64_t, f64, Value::from_i64(static_cast<int64_t>(out)))
#undef WB_QTRUNC
  WB_CASE(I64ExtendI32S) {
    stack.back() = Value::from_i64(stack.back().as_i32());
    WB_NEXT();
  }
  WB_CASE(I64ExtendI32U) {
    stack.back() = Value::from_i64(static_cast<int64_t>(stack.back().as_u32()));
    WB_NEXT();
  }
  WB_CASE(F32ConvertI32S) {
    stack.back() = Value::from_f32(static_cast<float>(stack.back().as_i32()));
    WB_NEXT();
  }
  WB_CASE(F32ConvertI32U) {
    stack.back() = Value::from_f32(static_cast<float>(stack.back().as_u32()));
    WB_NEXT();
  }
  WB_CASE(F32ConvertI64S) {
    stack.back() = Value::from_f32(static_cast<float>(stack.back().as_i64()));
    WB_NEXT();
  }
  WB_CASE(F32ConvertI64U) {
    stack.back() = Value::from_f32(static_cast<float>(stack.back().as_u64()));
    WB_NEXT();
  }
  WB_CASE(F32DemoteF64) {
    stack.back() = Value::from_f32(static_cast<float>(stack.back().as_f64()));
    WB_NEXT();
  }
  WB_CASE(F64ConvertI32S) {
    stack.back() = Value::from_f64(static_cast<double>(stack.back().as_i32()));
    WB_NEXT();
  }
  WB_CASE(F64ConvertI32U) {
    stack.back() = Value::from_f64(static_cast<double>(stack.back().as_u32()));
    WB_NEXT();
  }
  WB_CASE(F64ConvertI64S) {
    stack.back() = Value::from_f64(static_cast<double>(stack.back().as_i64()));
    WB_NEXT();
  }
  WB_CASE(F64ConvertI64U) {
    stack.back() = Value::from_f64(static_cast<double>(stack.back().as_u64()));
    WB_NEXT();
  }
  WB_CASE(F64PromoteF32) {
    stack.back() = Value::from_f64(static_cast<double>(stack.back().as_f32()));
    WB_NEXT();
  }

  // ---- Fused superinstructions ----
  WB_CASE(FConstSet) {
    locals[locals_base + q->a] = q->val;
    WB_NEXT();
  }
#define WB_QGETLOAD(name, CTYPE, PUSH)                        \
  WB_CASE(name) {                                             \
    const uint32_t addr = locals[locals_base + q->a].as_u32(); \
    CTYPE v;                                                  \
    if (!memory_->load<CTYPE>(addr, q->b, v)) {               \
      trap = Trap::MemoryOutOfBounds;                         \
      goto trapped;                                           \
    }                                                         \
    stack.push_back(PUSH);                                    \
    WB_NEXT();                                                \
  }
  WB_QGETLOAD(FGetLoadI32, int32_t, Value::from_i32(v))
  WB_QGETLOAD(FGetLoadI64, int64_t, Value::from_i64(v))
  WB_QGETLOAD(FGetLoadF32, float, Value::from_f32(v))
  WB_QGETLOAD(FGetLoadF64, double, Value::from_f64(v))
  WB_QGETLOAD(FGetLoadI32U8, uint8_t, Value::from_i32(static_cast<int32_t>(v)))
#undef WB_QGETLOAD
  WB_CASE(FCmpBrIf) {
    const Value vb = pop();
    const Value va = pop();
    bool take = false;
    switch (static_cast<Opcode>(q->c)) {
      case Opcode::I32Eq: take = va.as_i32() == vb.as_i32(); break;
      case Opcode::I32Ne: take = va.as_i32() != vb.as_i32(); break;
      case Opcode::I32LtS: take = va.as_i32() < vb.as_i32(); break;
      case Opcode::I32LtU: take = va.as_u32() < vb.as_u32(); break;
      case Opcode::I32GtS: take = va.as_i32() > vb.as_i32(); break;
      case Opcode::I32GtU: take = va.as_u32() > vb.as_u32(); break;
      case Opcode::I32LeS: take = va.as_i32() <= vb.as_i32(); break;
      case Opcode::I32LeU: take = va.as_u32() <= vb.as_u32(); break;
      case Opcode::I32GeS: take = va.as_i32() >= vb.as_i32(); break;
      case Opcode::I32GeU: take = va.as_u32() >= vb.as_u32(); break;
      default: break;
    }
    if (take) goto take_branch;
    WB_NEXT();
  }
#define WB_QGG(name, expr)                       \
  WB_CASE(FGetGet_##name) {                      \
    const Value va = locals[locals_base + q->a]; \
    const Value vb = locals[locals_base + q->b]; \
    stack.push_back(expr);                       \
    WB_NEXT();                                   \
  }
  WB_QFUSE_BINOPS(WB_QGG)
#undef WB_QGG
#define WB_QGC(name, expr)                       \
  WB_CASE(FGetConst_##name) {                    \
    const Value va = locals[locals_base + q->a]; \
    const Value vb = q->val;                     \
    stack.push_back(expr);                       \
    WB_NEXT();                                   \
  }
  WB_QFUSE_BINOPS(WB_QGC)
#undef WB_QGC
#define WB_QGGS(name, expr)                      \
  WB_CASE(FGetGetSet_##name) {                   \
    const Value va = locals[locals_base + q->a]; \
    const Value vb = locals[locals_base + q->b]; \
    locals[locals_base + q->c] = expr;           \
    WB_NEXT();                                   \
  }
  WB_QFUSE_BINOPS(WB_QGGS)
#undef WB_QGGS
#define WB_QGCS(name, expr)                      \
  WB_CASE(FGetConstSet_##name) {                 \
    const Value va = locals[locals_base + q->a]; \
    const Value vb = q->val;                     \
    locals[locals_base + q->c] = expr;           \
    WB_NEXT();                                   \
  }
  WB_QFUSE_BINOPS(WB_QGCS)
#undef WB_QGCS

#if !WB_THREADED_DISPATCH
  default:
    trap = Trap::HostError;  // corrupt QCode; cannot happen
    goto trapped;
  }  // switch
#endif

fuel_out:
  // The classic loop charges each op it still executes before trapping on
  // the first op at the fuel boundary; charge the same constituent prefix.
  // None of the skipped constituents has side effects the trap result
  // could observe (stores and grows are never fused).
  for (uint32_t k = 0; k < q->nops && ops < fuel; ++k) {
    ++ops;
    cost += costs[q->cls[k]];
    ++ccnt[q->cls[k]];
    const uint8_t cat = q->cat[k];
    if (cat != kCatNone) ++stats_.arith_counts[cat];
  }
  trap = Trap::FuelExhausted;

trapped:
  // Close the spans of every frame still on the stack so the trace stays
  // well-nested.
  if (tracer_) {
    for (size_t i = frames.size(); i-- > 0;) {
      tracer_->end(prof::Cat::WasmFunc, func_trace_names_[frames[i].fidx],
                   stats_.cost_ps + cost);
    }
  }
  flush_stats();
  return {trap, {}};

#undef WB_CASE
#undef WB_NEXT
#undef WB_JUMP
}

}  // namespace wb::wasm
