#include "wasm/quicken.h"

#include <atomic>
#include <cassert>
#include <cstdlib>

namespace wb::wasm {

namespace {

std::atomic<bool> g_quicken_default{true};

bool is_const_op(Opcode op) {
  return op == Opcode::I32Const || op == Opcode::I64Const ||
         op == Opcode::F32Const || op == Opcode::F64Const;
}

/// Exactly the classic interpreter's constant encodings.
Value const_value(const Instr& ins) {
  switch (ins.op) {
    case Opcode::I32Const:
      return Value::from_i32(static_cast<int32_t>(ins.ival));
    case Opcode::I64Const:
      return Value::from_i64(ins.ival);
    case Opcode::F32Const:
      return Value::from_f32(static_cast<float>(ins.fval));
    default:
      return Value::from_f64(ins.fval);
  }
}

/// Ops with no runtime effect in the quickened stream: they are charged
/// (original OpClass) but execute nothing. Blocks and Ends manipulate no
/// state once branches are pre-resolved; reinterprets are no-ops on raw
/// value bits.
bool is_charge_only(Opcode op) {
  switch (op) {
    case Opcode::Nop:
    case Opcode::Block:
    case Opcode::Loop:
    case Opcode::End:
    case Opcode::I32ReinterpretF32:
    case Opcode::I64ReinterpretF64:
    case Opcode::F32ReinterpretI32:
    case Opcode::F64ReinterpretI64:
      return true;
    default:
      return false;
  }
}

bool is_i32_cmp(Opcode op) {
  const uint8_t b = static_cast<uint8_t>(op);
  return b >= static_cast<uint8_t>(Opcode::I32Eq) &&
         b <= static_cast<uint8_t>(Opcode::I32GeU);
}

QOp gg_qop(Opcode op) {
  switch (op) {
#define WB_GG(name, expr) \
  case Opcode::name:      \
    return QOp::FGetGet_##name;
    WB_QFUSE_BINOPS(WB_GG)
#undef WB_GG
    default:
      return QOp::kCount;
  }
}

QOp gc_qop(Opcode op) {
  switch (op) {
#define WB_GC(name, expr) \
  case Opcode::name:      \
    return QOp::FGetConst_##name;
    WB_QFUSE_BINOPS(WB_GC)
#undef WB_GC
    default:
      return QOp::kCount;
  }
}

QOp ggs_qop(Opcode op) {
  switch (op) {
#define WB_GGS(name, expr) \
  case Opcode::name:       \
    return QOp::FGetGetSet_##name;
    WB_QFUSE_BINOPS(WB_GGS)
#undef WB_GGS
    default:
      return QOp::kCount;
  }
}

QOp gcs_qop(Opcode op) {
  switch (op) {
#define WB_GCS(name, expr) \
  case Opcode::name:       \
    return QOp::FGetConstSet_##name;
    WB_QFUSE_BINOPS(WB_GCS)
#undef WB_GCS
    default:
      return QOp::kCount;
  }
}

QOp get_load_qop(Opcode op) {
  switch (op) {
    case Opcode::I32Load:
      return QOp::FGetLoadI32;
    case Opcode::I64Load:
      return QOp::FGetLoadI64;
    case Opcode::F32Load:
      return QOp::FGetLoadF32;
    case Opcode::F64Load:
      return QOp::FGetLoadF64;
    case Opcode::I32Load8U:
      return QOp::FGetLoadI32U8;
    default:
      return QOp::kCount;
  }
}

/// Single-Instr mapping for every opcode that is not a special (control,
/// call, const) and not charge-only.
QOp qop_single(Opcode op) {
  switch (op) {
#define WB_Q1(name)  \
  case Opcode::name: \
    return QOp::name;
    WB_QOP_SINGLES(WB_Q1)
#undef WB_Q1
    default:
      assert(false && "unmapped opcode");
      return QOp::ChargeOnly;
  }
}

/// Net operand-stack effect of a non-control instruction (control flow is
/// handled structurally by the translation walk).
int net_delta(const Module& module, const Instr& ins) {
  switch (ins.op) {
    case Opcode::Call: {
      const FuncType& t = module.func_type(ins.a);
      return static_cast<int>(t.results.size()) - static_cast<int>(t.params.size());
    }
    case Opcode::CallIndirect: {
      const FuncType& t = module.types[ins.a];
      return static_cast<int>(t.results.size()) - static_cast<int>(t.params.size()) -
             1;
    }
    case Opcode::Drop:
    case Opcode::LocalSet:
    case Opcode::GlobalSet:
      return -1;
    case Opcode::Select:
      return -2;
    case Opcode::LocalGet:
    case Opcode::GlobalGet:
    case Opcode::MemorySize:
    case Opcode::I32Const:
    case Opcode::I64Const:
    case Opcode::F32Const:
    case Opcode::F64Const:
      return +1;
    case Opcode::LocalTee:
    case Opcode::MemoryGrow:
      return 0;
    default:
      break;
  }
  const uint8_t b = static_cast<uint8_t>(ins.op);
  if (b >= 0x28 && b <= 0x2f) return 0;   // loads: pop addr, push value
  if (b >= 0x36 && b <= 0x3b) return -2;  // stores
  if (b == 0x45 || b == 0x50) return 0;   // i32/i64 eqz (unary)
  if (b >= 0x46 && b <= 0x66) return -1;  // binary compares
  if (b >= 0x67 && b <= 0x69) return 0;   // i32 clz/ctz/popcnt
  if (b >= 0x6a && b <= 0x78) return -1;  // i32 binops
  if (b >= 0x79 && b <= 0x7b) return 0;   // i64 clz/ctz/popcnt
  if (b >= 0x7c && b <= 0x8a) return -1;  // i64 binops
  if (b >= 0x8b && b <= 0x91) return 0;   // f32 unary
  if (b >= 0x92 && b <= 0x98) return -1;  // f32 binops
  if (b >= 0x99 && b <= 0x9f) return 0;   // f64 unary
  if (b >= 0xa0 && b <= 0xa6) return -1;  // f64 binops
  if (b >= 0xa7 && b <= 0xbf) return 0;   // conversions
  return 0;                               // Nop / Unreachable
}

/// A branch resolved during the translation walk, still in original-pc
/// space (patched to QCode pcs after emission).
struct BrRes {
  uint32_t target_pc = 0;
  uint32_t height = 0;  ///< stack height at the target frame's entry
  uint8_t arity = 0;
  bool is_loop = false;
};

/// An open structured frame during the static walk. `valid` is false for
/// frames entered in unreachable code, whose heights never matter at
/// runtime (the validator guarantees such branches cannot execute).
struct TFrame {
  int32_t entry_height = 0;
  uint8_t arity = 0;
  bool is_loop = false;
  bool valid = true;
  uint32_t br_target_pc = 0;
};

}  // namespace

void set_quicken_default(bool enabled) {
  g_quicken_default.store(enabled, std::memory_order_relaxed);
}

bool quicken_default() {
  static const bool env_off = std::getenv("WB_NO_QUICKEN") != nullptr;
  return !env_off && g_quicken_default.load(std::memory_order_relaxed);
}

QFunc quicken(const Module& module, uint32_t defined_index) {
  const Function& fn = module.functions[defined_index];
  const FuncType& type = module.types[fn.type_index];
  const uint8_t result_count = static_cast<uint8_t>(type.results.size());
  const uint32_t n = static_cast<uint32_t>(fn.body.size());
  const Instr* body = fn.body.data();

  // ---- Pass 1: matching Ends, If false-targets, and jump-target pcs ----
  std::vector<uint32_t> end_pc(n, 0);
  std::vector<uint32_t> false_pc(n, 0);
  // A pc is a jump target if any pre-resolved branch can land on it; such
  // pcs must start a QInstr, so fusion never swallows them.
  std::vector<uint8_t> is_target(n + 1, 0);
  is_target[n] = 1;  // the FuncReturn sentinel
  {
    std::vector<uint32_t> block_stack;
    std::vector<uint32_t> else_stack;
    for (uint32_t pc = 0; pc < n; ++pc) {
      switch (body[pc].op) {
        case Opcode::Block:
        case Opcode::Loop:
        case Opcode::If:
          block_stack.push_back(pc);
          else_stack.push_back(0);
          break;
        case Opcode::Else:
          assert(!block_stack.empty());
          else_stack.back() = pc;
          break;
        case Opcode::End: {
          if (block_stack.empty()) break;  // function-closing end
          const uint32_t open = block_stack.back();
          const uint32_t else_pc = else_stack.back();
          block_stack.pop_back();
          else_stack.pop_back();
          end_pc[open] = pc;
          if (fn.body[open].op == Opcode::If) {
            false_pc[open] = else_pc ? else_pc + 1 : pc;
          }
          if (else_pc) end_pc[else_pc] = pc;
          break;
        }
        default:
          break;
      }
    }
    for (uint32_t pc = 0; pc < n; ++pc) {
      switch (body[pc].op) {
        case Opcode::Block:
          is_target[end_pc[pc] + 1] = 1;
          break;
        case Opcode::Loop:
          is_target[pc + 1] = 1;
          break;
        case Opcode::If:
          is_target[false_pc[pc]] = 1;
          is_target[end_pc[pc] + 1] = 1;
          break;
        case Opcode::Else:
          is_target[end_pc[pc]] = 1;  // Else jumps to its matching End
          break;
        default:
          break;
      }
    }
  }

  // ---- Pass 2: static stack heights + branch resolution ----------------
  // The validator's stack discipline makes every reachable program point's
  // height a fixed static value; this is the same abstract walk, with
  // unreachable stretches (after br/return/unreachable/br_table) tracked
  // via per-frame validity so dead branches get harmless dummy targets.
  std::vector<BrRes> br_res(n);
  std::vector<int32_t> table_res_index(n, -1);
  std::vector<std::vector<BrRes>> table_res;
  {
    std::vector<TFrame> tframes;
    tframes.push_back({0, result_count, false, true, n});
    int32_t height = 0;
    bool unreachable = false;

    const auto resolve = [&](uint32_t depth) -> BrRes {
      if (depth >= tframes.size()) return {};  // only possible in dead code
      const TFrame& f = tframes[tframes.size() - 1 - depth];
      BrRes r;
      r.target_pc = f.br_target_pc;
      r.height = f.valid ? static_cast<uint32_t>(f.entry_height) : 0;
      r.arity = f.is_loop ? 0 : f.arity;
      r.is_loop = f.is_loop;
      return r;
    };
    const auto block_arity = [](const Instr& ins) -> uint8_t {
      return ins.a == kVoidBlockType ? 0 : 1;
    };

    for (uint32_t pc = 0; pc < n; ++pc) {
      const Instr& ins = body[pc];
      switch (ins.op) {
        case Opcode::Block:
          tframes.push_back(
              {height, block_arity(ins), false, !unreachable, end_pc[pc] + 1});
          break;
        case Opcode::Loop:
          tframes.push_back({height, block_arity(ins), true, !unreachable, pc + 1});
          break;
        case Opcode::If:
          if (!unreachable) height -= 1;  // condition
          tframes.push_back(
              {height, block_arity(ins), false, !unreachable, end_pc[pc] + 1});
          break;
        case Opcode::Else: {
          const TFrame& f = tframes.back();
          height = f.valid ? f.entry_height : 0;
          unreachable = !f.valid;
          break;
        }
        case Opcode::End:
          if (tframes.size() > 1) {
            const TFrame f = tframes.back();
            tframes.pop_back();
            height = f.valid ? f.entry_height + f.arity : 0;
            unreachable = !f.valid;
          }
          break;
        case Opcode::Unreachable:
        case Opcode::Return:
          unreachable = true;
          break;
        case Opcode::Br:
          br_res[pc] = resolve(ins.a);
          unreachable = true;
          break;
        case Opcode::BrIf:
          if (!unreachable) height -= 1;  // condition
          br_res[pc] = resolve(ins.a);
          break;
        case Opcode::BrTable: {
          if (!unreachable) height -= 1;  // index
          table_res_index[pc] = static_cast<int32_t>(table_res.size());
          std::vector<BrRes> entries;
          for (const uint32_t depth : module.br_tables[ins.a]) {
            entries.push_back(resolve(depth));
          }
          table_res.push_back(std::move(entries));
          unreachable = true;
          break;
        }
        default:
          if (!unreachable) height += net_delta(module, ins);
          break;
      }
    }
  }

  // ---- Pass 3: emission with superinstruction fusion -------------------
  QFunc qf;
  qf.code.reserve(n + 1);
  std::vector<uint32_t> qpc_of(n + 1, UINT32_MAX);
  struct Fix {
    uint32_t qidx;
    uint32_t target_pc;
  };
  std::vector<Fix> fixups;           // patch QInstr::a = qpc_of[target_pc]
  std::vector<uint32_t> return_idx;  // patch QInstr::b = FuncReturn pc
  std::vector<int32_t> table_of_emit;  // table_res index per emitted table

  const auto charge_info = [&](QInstr& q, uint32_t p0, uint32_t count) {
    q.nops = static_cast<uint8_t>(count);
    for (uint32_t k = 0; k < count; ++k) {
      q.cls[k] = static_cast<uint8_t>(op_class(body[p0 + k].op));
      q.cat[k] = static_cast<uint8_t>(arith_cat(body[p0 + k].op));
    }
    q.cat_packed = 0;
    for (uint32_t k = 0; k < 4; ++k) q.cat_packed += 1ull << (8 * q.cat[k]);
    q.cls_packed_lo = q.cls_packed_hi = 0;
    for (uint32_t k = 0; k < 4; ++k) {
      if (q.cls[k] < 8) {
        q.cls_packed_lo += 1ull << (8 * q.cls[k]);
      } else {
        q.cls_packed_hi += 1ull << (8 * (q.cls[k] - 8));
      }
    }
  };
  const auto set_branch = [&](QInstr& q, const BrRes& r) {
    q.b = r.height;
    q.flags = static_cast<uint8_t>((r.is_loop ? 1 : 0) | (r.arity << 1));
    fixups.push_back({static_cast<uint32_t>(qf.code.size()), r.target_pc});
  };

  uint32_t pc = 0;
  while (pc < n) {
    qpc_of[pc] = static_cast<uint32_t>(qf.code.size());
    const Instr& i0 = body[pc];
    QInstr q;

    // 4-grams: local.get + (local.get | const) + binop + local.set.
    if (i0.op == Opcode::LocalGet && pc + 3 < n && !is_target[pc + 1] &&
        !is_target[pc + 2] && !is_target[pc + 3] &&
        body[pc + 3].op == Opcode::LocalSet) {
      const Instr& i1 = body[pc + 1];
      const Instr& i2 = body[pc + 2];
      if (i1.op == Opcode::LocalGet) {
        const QOp f = ggs_qop(i2.op);
        if (f != QOp::kCount) {
          q.op = static_cast<uint16_t>(f);
          q.a = i0.a;
          q.b = i1.a;
          q.c = body[pc + 3].a;
          charge_info(q, pc, 4);
          qf.code.push_back(q);
          pc += 4;
          continue;
        }
      } else if (is_const_op(i1.op)) {
        const QOp f = gcs_qop(i2.op);
        if (f != QOp::kCount) {
          q.op = static_cast<uint16_t>(f);
          q.a = i0.a;
          q.c = body[pc + 3].a;
          q.val = const_value(i1);
          charge_info(q, pc, 4);
          qf.code.push_back(q);
          pc += 4;
          continue;
        }
      }
    }
    // Trigrams: local.get + (local.get | const) + binop.
    if (i0.op == Opcode::LocalGet && pc + 2 < n && !is_target[pc + 1] &&
        !is_target[pc + 2]) {
      const Instr& i1 = body[pc + 1];
      const Instr& i2 = body[pc + 2];
      if (i1.op == Opcode::LocalGet) {
        const QOp f = gg_qop(i2.op);
        if (f != QOp::kCount) {
          q.op = static_cast<uint16_t>(f);
          q.a = i0.a;
          q.b = i1.a;
          charge_info(q, pc, 3);
          qf.code.push_back(q);
          pc += 3;
          continue;
        }
      } else if (is_const_op(i1.op)) {
        const QOp f = gc_qop(i2.op);
        if (f != QOp::kCount) {
          q.op = static_cast<uint16_t>(f);
          q.a = i0.a;
          q.val = const_value(i1);
          charge_info(q, pc, 3);
          qf.code.push_back(q);
          pc += 3;
          continue;
        }
      }
    }
    // Bigram: local.get + load.
    if (i0.op == Opcode::LocalGet && pc + 1 < n && !is_target[pc + 1]) {
      const QOp f = get_load_qop(body[pc + 1].op);
      if (f != QOp::kCount) {
        q.op = static_cast<uint16_t>(f);
        q.a = i0.a;
        q.b = body[pc + 1].b;  // memory offset
        charge_info(q, pc, 2);
        qf.code.push_back(q);
        pc += 2;
        continue;
      }
    }
    // Bigram: const + local.set.
    if (is_const_op(i0.op) && pc + 1 < n && !is_target[pc + 1] &&
        body[pc + 1].op == Opcode::LocalSet) {
      q.op = static_cast<uint16_t>(QOp::FConstSet);
      q.a = body[pc + 1].a;
      q.val = const_value(i0);
      charge_info(q, pc, 2);
      qf.code.push_back(q);
      pc += 2;
      continue;
    }
    // Bigram: i32 compare + br_if.
    if (is_i32_cmp(i0.op) && pc + 1 < n && !is_target[pc + 1] &&
        body[pc + 1].op == Opcode::BrIf) {
      q.op = static_cast<uint16_t>(QOp::FCmpBrIf);
      q.c = static_cast<uint32_t>(i0.op);
      set_branch(q, br_res[pc + 1]);
      charge_info(q, pc, 2);
      qf.code.push_back(q);
      pc += 2;
      continue;
    }
    // Runs of charge-only ops (Nop/Block/Loop/End/reinterpret).
    if (is_charge_only(i0.op)) {
      uint32_t count = 1;
      while (count < 3 && pc + count < n && !is_target[pc + count] &&
             is_charge_only(body[pc + count].op)) {
        ++count;
      }
      q.op = static_cast<uint16_t>(QOp::ChargeOnly);
      charge_info(q, pc, count);
      qf.code.push_back(q);
      pc += count;
      continue;
    }

    // Specials and plain singles.
    charge_info(q, pc, 1);
    switch (i0.op) {
      case Opcode::Unreachable:
        q.op = static_cast<uint16_t>(QOp::Unreachable);
        break;
      case Opcode::If:
        q.op = static_cast<uint16_t>(QOp::If);
        fixups.push_back({static_cast<uint32_t>(qf.code.size()), false_pc[pc]});
        break;
      case Opcode::Else:
        q.op = static_cast<uint16_t>(QOp::Jump);
        fixups.push_back({static_cast<uint32_t>(qf.code.size()), end_pc[pc]});
        break;
      case Opcode::Br:
        q.op = static_cast<uint16_t>(QOp::Br);
        set_branch(q, br_res[pc]);
        break;
      case Opcode::BrIf:
        q.op = static_cast<uint16_t>(QOp::BrIf);
        set_branch(q, br_res[pc]);
        break;
      case Opcode::BrTable:
        q.op = static_cast<uint16_t>(QOp::BrTable);
        q.a = static_cast<uint32_t>(table_of_emit.size());
        table_of_emit.push_back(table_res_index[pc]);
        break;
      case Opcode::Return:
        q.op = static_cast<uint16_t>(QOp::Return);
        q.a = result_count;
        return_idx.push_back(static_cast<uint32_t>(qf.code.size()));
        break;
      case Opcode::Call:
        q.op = static_cast<uint16_t>(QOp::Call);
        q.a = i0.a;
        break;
      case Opcode::CallIndirect:
        q.op = static_cast<uint16_t>(QOp::CallIndirect);
        q.a = i0.a;
        break;
      case Opcode::I32Const:
      case Opcode::I64Const:
      case Opcode::F32Const:
      case Opcode::F64Const:
        q.op = static_cast<uint16_t>(QOp::Const);
        q.val = const_value(i0);
        break;
      default:
        q.op = static_cast<uint16_t>(qop_single(i0.op));
        q.a = i0.a;
        q.b = i0.b;
        break;
    }
    qf.code.push_back(q);
    ++pc;
  }

  // The unwind sentinel every fallthrough/return lands on (nops = 0: the
  // classic loop's pc==code_size unwind is not an op and never charged).
  qpc_of[n] = static_cast<uint32_t>(qf.code.size());
  QInstr ret;
  ret.op = static_cast<uint16_t>(QOp::FuncReturn);
  ret.nops = 0;
  qf.code.push_back(ret);

  // ---- Fixups: original pcs -> QCode pcs -------------------------------
  for (const Fix& f : fixups) {
    assert(qpc_of[f.target_pc] != UINT32_MAX);
    qf.code[f.qidx].a = qpc_of[f.target_pc];
  }
  for (const uint32_t qidx : return_idx) {
    qf.code[qidx].b = qpc_of[n];
  }
  for (const int32_t ti : table_of_emit) {
    std::vector<QBrTarget> entries;
    for (const BrRes& r : table_res[static_cast<size_t>(ti)]) {
      assert(qpc_of[r.target_pc] != UINT32_MAX);
      entries.push_back({qpc_of[r.target_pc], r.height, r.arity, r.is_loop});
    }
    qf.br_tables.push_back(std::move(entries));
  }
  return qf;
}

}  // namespace wb::wasm
