#include <cstring>

#include "support/leb128.h"
#include "wasm/codec.h"

namespace wb::wasm {

namespace {

/// Cursor over the binary with checked reads. All read_* methods return
/// false (and latch an error message) on malformed input.
class Reader {
 public:
  Reader(std::span<const uint8_t> bytes, std::string* error)
      : bytes_(bytes), error_(error) {}

  [[nodiscard]] size_t pos() const { return pos_; }
  [[nodiscard]] bool done() const { return pos_ >= bytes_.size(); }
  [[nodiscard]] bool ok() const { return ok_; }

  bool fail(const std::string& message) {
    if (ok_ && error_) *error_ = message + " at offset " + std::to_string(pos_);
    ok_ = false;
    return false;
  }

  bool read_byte(uint8_t& out) {
    if (pos_ >= bytes_.size()) return fail("unexpected end of input");
    out = bytes_[pos_++];
    return true;
  }

  bool read_u32(uint32_t& out) {
    auto r = support::read_uleb128(bytes_.subspan(pos_));
    if (!r || r->value > 0xffffffffull) return fail("bad uleb128");
    out = static_cast<uint32_t>(r->value);
    pos_ += r->size;
    return true;
  }

  bool read_i32(int32_t& out) {
    auto r = support::read_sleb128(bytes_.subspan(pos_));
    if (!r) return fail("bad sleb128");
    out = static_cast<int32_t>(r->value);
    pos_ += r->size;
    return true;
  }

  bool read_i64(int64_t& out) {
    auto r = support::read_sleb128(bytes_.subspan(pos_));
    if (!r) return fail("bad sleb128");
    out = r->value;
    pos_ += r->size;
    return true;
  }

  bool read_f32(float& out) {
    if (pos_ + 4 > bytes_.size()) return fail("unexpected end of f32");
    std::memcpy(&out, bytes_.data() + pos_, 4);
    pos_ += 4;
    return true;
  }

  bool read_f64(double& out) {
    if (pos_ + 8 > bytes_.size()) return fail("unexpected end of f64");
    std::memcpy(&out, bytes_.data() + pos_, 8);
    pos_ += 8;
    return true;
  }

  bool read_name(std::string& out) {
    uint32_t len = 0;
    if (!read_u32(len)) return false;
    if (pos_ + len > bytes_.size()) return fail("name extends past end");
    out.assign(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return true;
  }

  bool read_valtype(ValType& out) {
    uint8_t b = 0;
    if (!read_byte(b)) return false;
    switch (b) {
      case 0x7f: out = ValType::I32; return true;
      case 0x7e: out = ValType::I64; return true;
      case 0x7d: out = ValType::F32; return true;
      case 0x7c: out = ValType::F64; return true;
      default: return fail("bad value type");
    }
  }

  bool read_limits(uint32_t& min, std::optional<uint32_t>& max) {
    uint8_t flag = 0;
    if (!read_byte(flag)) return false;
    if (flag > 1) return fail("bad limits flag");
    if (!read_u32(min)) return false;
    if (flag == 1) {
      uint32_t m = 0;
      if (!read_u32(m)) return false;
      max = m;
    } else {
      max.reset();
    }
    return true;
  }

  void skip(size_t n) { pos_ = std::min(pos_ + n, bytes_.size()); }
  void seek(size_t p) { pos_ = std::min(p, bytes_.size()); }

 private:
  std::span<const uint8_t> bytes_;
  std::string* error_;
  size_t pos_ = 0;
  bool ok_ = true;
};

bool read_const_expr_i32(Reader& r, uint32_t& out) {
  uint8_t op = 0;
  if (!r.read_byte(op)) return false;
  if (op != static_cast<uint8_t>(Opcode::I32Const)) return r.fail("expected i32.const init");
  int32_t v = 0;
  if (!r.read_i32(v)) return false;
  out = static_cast<uint32_t>(v);
  uint8_t end = 0;
  if (!r.read_byte(end)) return false;
  if (end != static_cast<uint8_t>(Opcode::End)) return r.fail("expected end of init expr");
  return true;
}

bool read_instr(Reader& r, Module& module, Instr& ins) {
  uint8_t byte = 0;
  if (!r.read_byte(byte)) return false;
  if (!is_known_opcode(byte)) return r.fail("unknown opcode " + std::to_string(byte));
  ins = Instr{};
  ins.op = static_cast<Opcode>(byte);
  switch (ins.op) {
    case Opcode::Block:
    case Opcode::Loop:
    case Opcode::If: {
      uint8_t bt = 0;
      if (!r.read_byte(bt)) return false;
      if (bt != kVoidBlockType && bt != 0x7f && bt != 0x7e && bt != 0x7d && bt != 0x7c) {
        return r.fail("bad block type");
      }
      ins.a = bt;
      return true;
    }
    case Opcode::Br:
    case Opcode::BrIf:
    case Opcode::Call:
    case Opcode::LocalGet:
    case Opcode::LocalSet:
    case Opcode::LocalTee:
    case Opcode::GlobalGet:
    case Opcode::GlobalSet:
      return r.read_u32(ins.a);
    case Opcode::CallIndirect: {
      if (!r.read_u32(ins.a)) return false;
      uint8_t table = 0;
      if (!r.read_byte(table)) return false;
      if (table != 0) return r.fail("bad table index");
      return true;
    }
    case Opcode::BrTable: {
      uint32_t count = 0;
      if (!r.read_u32(count)) return false;
      std::vector<uint32_t> targets(count + 1);
      for (auto& t : targets) {
        if (!r.read_u32(t)) return false;
      }
      module.br_tables.push_back(std::move(targets));
      ins.a = static_cast<uint32_t>(module.br_tables.size() - 1);
      return true;
    }
    case Opcode::MemorySize:
    case Opcode::MemoryGrow: {
      uint8_t mem = 0;
      if (!r.read_byte(mem)) return false;
      if (mem != 0) return r.fail("bad memory index");
      return true;
    }
    case Opcode::I32Const: {
      int32_t v = 0;
      if (!r.read_i32(v)) return false;
      ins.ival = v;
      return true;
    }
    case Opcode::I64Const:
      return r.read_i64(ins.ival);
    case Opcode::F32Const: {
      float v = 0;
      if (!r.read_f32(v)) return false;
      ins.fval = v;
      return true;
    }
    case Opcode::F64Const:
      return r.read_f64(ins.fval);
    default:
      if (op_class(ins.op) == OpClass::Load || op_class(ins.op) == OpClass::Store) {
        return r.read_u32(ins.a) && r.read_u32(ins.b);
      }
      return true;
  }
}

}  // namespace

std::optional<Module> decode(std::span<const uint8_t> bytes, std::string* error) {
  Reader r(bytes, error);
  Module module;

  // Magic + version.
  static constexpr uint8_t kHeader[8] = {0x00, 0x61, 0x73, 0x6d, 0x01, 0x00, 0x00, 0x00};
  if (bytes.size() < 8 || std::memcmp(bytes.data(), kHeader, 8) != 0) {
    r.fail("bad magic or version");
    return std::nullopt;
  }
  r.seek(8);

  int last_section = 0;
  while (!r.done() && r.ok()) {
    uint8_t id = 0;
    uint32_t size = 0;
    if (!r.read_byte(id) || !r.read_u32(size)) break;
    const size_t section_end = r.pos() + size;
    if (id != 0) {  // custom sections may appear anywhere
      if (id <= last_section) {
        r.fail("section out of order");
        break;
      }
      last_section = id;
    }

    switch (id) {
      case 0:  // custom: skip
        r.skip(size);
        break;
      case 1: {  // types
        uint32_t count = 0;
        if (!r.read_u32(count)) break;
        for (uint32_t i = 0; i < count && r.ok(); ++i) {
          uint8_t form = 0;
          if (!r.read_byte(form)) break;
          if (form != 0x60) {
            r.fail("bad functype form");
            break;
          }
          FuncType type;
          uint32_t np = 0;
          if (!r.read_u32(np)) break;
          type.params.resize(np);
          for (auto& t : type.params) {
            if (!r.read_valtype(t)) break;
          }
          uint32_t nr = 0;
          if (!r.read_u32(nr)) break;
          if (nr > 1) {
            r.fail("multi-value results not supported");
            break;
          }
          type.results.resize(nr);
          for (auto& t : type.results) {
            if (!r.read_valtype(t)) break;
          }
          module.types.push_back(std::move(type));
        }
        break;
      }
      case 2: {  // imports
        uint32_t count = 0;
        if (!r.read_u32(count)) break;
        for (uint32_t i = 0; i < count && r.ok(); ++i) {
          Import imp;
          if (!r.read_name(imp.module) || !r.read_name(imp.name)) break;
          uint8_t kind = 0;
          if (!r.read_byte(kind)) break;
          if (kind != 0x00) {
            r.fail("only function imports supported");
            break;
          }
          if (!r.read_u32(imp.type_index)) break;
          module.imports.push_back(std::move(imp));
        }
        break;
      }
      case 3: {  // function declarations
        uint32_t count = 0;
        if (!r.read_u32(count)) break;
        module.functions.resize(count);
        for (auto& fn : module.functions) {
          if (!r.read_u32(fn.type_index)) break;
        }
        break;
      }
      case 4: {  // table
        uint32_t count = 0;
        if (!r.read_u32(count)) break;
        if (count > 1) {
          r.fail("multiple tables not supported");
          break;
        }
        if (count == 1) {
          uint8_t elemtype = 0;
          if (!r.read_byte(elemtype)) break;
          if (elemtype != 0x70) {
            r.fail("bad table element type");
            break;
          }
          uint32_t min = 0;
          std::optional<uint32_t> max;
          if (!r.read_limits(min, max)) break;
          module.table_size = min;
        }
        break;
      }
      case 5: {  // memory
        uint32_t count = 0;
        if (!r.read_u32(count)) break;
        if (count > 1) {
          r.fail("multiple memories not supported");
          break;
        }
        if (count == 1) {
          MemoryDecl mem;
          if (!r.read_limits(mem.min_pages, mem.max_pages)) break;
          module.memory = mem;
        }
        break;
      }
      case 6: {  // globals
        uint32_t count = 0;
        if (!r.read_u32(count)) break;
        for (uint32_t i = 0; i < count && r.ok(); ++i) {
          Global g;
          if (!r.read_valtype(g.type)) break;
          uint8_t mut = 0;
          if (!r.read_byte(mut)) break;
          g.mutable_ = mut != 0;
          uint8_t op = 0;
          if (!r.read_byte(op)) break;
          switch (static_cast<Opcode>(op)) {
            case Opcode::I32Const: {
              int32_t v = 0;
              if (!r.read_i32(v)) break;
              g.init = Value::from_i32(v);
              break;
            }
            case Opcode::I64Const: {
              int64_t v = 0;
              if (!r.read_i64(v)) break;
              g.init = Value::from_i64(v);
              break;
            }
            case Opcode::F32Const: {
              float v = 0;
              if (!r.read_f32(v)) break;
              g.init = Value::from_f32(v);
              break;
            }
            case Opcode::F64Const: {
              double v = 0;
              if (!r.read_f64(v)) break;
              g.init = Value::from_f64(v);
              break;
            }
            default:
              r.fail("bad global init");
              break;
          }
          uint8_t end = 0;
          if (!r.read_byte(end)) break;
          if (end != static_cast<uint8_t>(Opcode::End)) {
            r.fail("expected end of global init");
            break;
          }
          module.globals.push_back(g);
        }
        break;
      }
      case 7: {  // exports
        uint32_t count = 0;
        if (!r.read_u32(count)) break;
        for (uint32_t i = 0; i < count && r.ok(); ++i) {
          Export e;
          if (!r.read_name(e.name)) break;
          uint8_t kind = 0;
          if (!r.read_byte(kind)) break;
          if (kind != 0 && kind != 2 && kind != 3) {
            r.fail("unsupported export kind");
            break;
          }
          e.kind = static_cast<ExportKind>(kind);
          if (!r.read_u32(e.index)) break;
          module.exports.push_back(std::move(e));
        }
        break;
      }
      case 9: {  // element segments
        uint32_t count = 0;
        if (!r.read_u32(count)) break;
        for (uint32_t i = 0; i < count && r.ok(); ++i) {
          uint32_t table_index = 0;
          if (!r.read_u32(table_index)) break;
          if (table_index != 0) {
            r.fail("bad elem table index");
            break;
          }
          ElemSegment seg;
          if (!read_const_expr_i32(r, seg.offset)) break;
          uint32_t n = 0;
          if (!r.read_u32(n)) break;
          seg.func_indices.resize(n);
          for (auto& f : seg.func_indices) {
            if (!r.read_u32(f)) break;
          }
          module.elems.push_back(std::move(seg));
        }
        break;
      }
      case 10: {  // code
        uint32_t count = 0;
        if (!r.read_u32(count)) break;
        if (count != module.functions.size()) {
          r.fail("code count mismatch");
          break;
        }
        for (uint32_t i = 0; i < count && r.ok(); ++i) {
          uint32_t body_size = 0;
          if (!r.read_u32(body_size)) break;
          const size_t body_end = r.pos() + body_size;
          Function& fn = module.functions[i];
          uint32_t num_runs = 0;
          if (!r.read_u32(num_runs)) break;
          for (uint32_t run = 0; run < num_runs && r.ok(); ++run) {
            uint32_t n = 0;
            ValType t{};
            if (!r.read_u32(n) || !r.read_valtype(t)) break;
            if (fn.locals.size() + n > 100000) {
              r.fail("too many locals");
              break;
            }
            fn.locals.insert(fn.locals.end(), n, t);
          }
          while (r.ok() && r.pos() < body_end) {
            Instr ins;
            if (!read_instr(r, module, ins)) break;
            fn.body.push_back(ins);
          }
          if (r.ok() && (fn.body.empty() || fn.body.back().op != Opcode::End)) {
            r.fail("function body must end with end");
          }
        }
        break;
      }
      case 11: {  // data segments
        uint32_t count = 0;
        if (!r.read_u32(count)) break;
        for (uint32_t i = 0; i < count && r.ok(); ++i) {
          uint32_t mem_index = 0;
          if (!r.read_u32(mem_index)) break;
          if (mem_index != 0) {
            r.fail("bad data memory index");
            break;
          }
          DataSegment seg;
          if (!read_const_expr_i32(r, seg.offset)) break;
          uint32_t n = 0;
          if (!r.read_u32(n)) break;
          if (r.pos() + n > bytes.size()) {
            r.fail("data segment extends past end");
            break;
          }
          seg.bytes.assign(bytes.begin() + static_cast<ptrdiff_t>(r.pos()),
                           bytes.begin() + static_cast<ptrdiff_t>(r.pos() + n));
          r.skip(n);
          module.data.push_back(std::move(seg));
        }
        break;
      }
      default:
        r.fail("unknown section id " + std::to_string(id));
        break;
    }

    if (r.ok() && r.pos() != section_end) {
      r.fail("section size mismatch (id " + std::to_string(id) + ")");
    }
  }

  if (!r.ok()) return std::nullopt;
  return module;
}

}  // namespace wb::wasm
