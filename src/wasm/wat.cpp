#include "wasm/wat.h"

#include <sstream>

namespace wb::wasm {

namespace {

void print_type_use(std::ostringstream& out, const FuncType& type) {
  if (!type.params.empty()) {
    out << " (param";
    for (ValType t : type.params) out << " " << to_string(t);
    out << ")";
  }
  if (!type.results.empty()) {
    out << " (result";
    for (ValType t : type.results) out << " " << to_string(t);
    out << ")";
  }
}

void print_block_type(std::ostringstream& out, uint32_t bt) {
  if (bt != kVoidBlockType) {
    out << " (result " << to_string(static_cast<ValType>(bt)) << ")";
  }
}

}  // namespace

std::string to_wat(const Module& module, const Function& fn, uint32_t func_index) {
  std::ostringstream out;
  out << "  (func $f" << func_index;
  if (!fn.debug_name.empty()) out << " (; " << fn.debug_name << " ;)";
  out << " (type $t" << fn.type_index << ")";
  print_type_use(out, module.types[fn.type_index]);
  out << "\n";
  if (!fn.locals.empty()) {
    out << "   ";
    for (ValType t : fn.locals) out << " (local " << to_string(t) << ")";
    out << "\n";
  }
  int indent = 2;
  for (const Instr& ins : fn.body) {
    if (ins.op == Opcode::End || ins.op == Opcode::Else) indent = std::max(indent - 1, 2);
    out << std::string(static_cast<size_t>(indent) * 2, ' ') << to_string(ins.op);
    switch (ins.op) {
      case Opcode::Block:
      case Opcode::Loop:
      case Opcode::If:
        print_block_type(out, ins.a);
        ++indent;
        break;
      case Opcode::Else:
        ++indent;
        break;
      case Opcode::Br:
      case Opcode::BrIf:
        out << " " << ins.a;
        break;
      case Opcode::BrTable:
        for (uint32_t t : module.br_tables[ins.a]) out << " " << t;
        break;
      case Opcode::Call:
        out << " $f" << ins.a;
        break;
      case Opcode::CallIndirect:
        out << " (type $t" << ins.a << ")";
        break;
      case Opcode::LocalGet:
      case Opcode::LocalSet:
      case Opcode::LocalTee:
        out << " " << ins.a;
        break;
      case Opcode::GlobalGet:
      case Opcode::GlobalSet:
        out << " $g" << ins.a;
        break;
      case Opcode::I32Const:
        out << " " << static_cast<int32_t>(ins.ival);
        break;
      case Opcode::I64Const:
        out << " " << ins.ival;
        break;
      case Opcode::F32Const:
      case Opcode::F64Const:
        out << " " << ins.fval;
        break;
      default:
        if (op_class(ins.op) == OpClass::Load || op_class(ins.op) == OpClass::Store) {
          if (ins.b != 0) out << " offset=" << ins.b;
        }
        break;
    }
    out << "\n";
  }
  out << "  )\n";
  return out.str();
}

std::string to_wat(const Module& module) {
  std::ostringstream out;
  out << "(module\n";
  for (uint32_t i = 0; i < module.types.size(); ++i) {
    out << "  (type $t" << i << " (func";
    print_type_use(out, module.types[i]);
    out << "))\n";
  }
  for (const auto& imp : module.imports) {
    out << "  (import \"" << imp.module << "\" \"" << imp.name
        << "\" (func (type $t" << imp.type_index << ")))\n";
  }
  if (module.memory) {
    out << "  (memory " << module.memory->min_pages;
    if (module.memory->max_pages) out << " " << *module.memory->max_pages;
    out << ")\n";
  }
  for (uint32_t i = 0; i < module.globals.size(); ++i) {
    const Global& g = module.globals[i];
    out << "  (global $g" << i << " ";
    if (g.mutable_) {
      out << "(mut " << to_string(g.type) << ")";
    } else {
      out << to_string(g.type);
    }
    out << ")\n";
  }
  for (uint32_t i = 0; i < module.functions.size(); ++i) {
    out << to_wat(module, module.functions[i],
                  static_cast<uint32_t>(module.imports.size()) + i);
  }
  for (const auto& e : module.exports) {
    out << "  (export \"" << e.name << "\" ";
    switch (e.kind) {
      case ExportKind::Func: out << "(func $f" << e.index << ")"; break;
      case ExportKind::Memory: out << "(memory 0)"; break;
      case ExportKind::Global: out << "(global $g" << e.index << ")"; break;
    }
    out << ")\n";
  }
  out << ")\n";
  return out.str();
}

}  // namespace wb::wasm
