// WebAssembly linear memory: a contiguous, growable buffer of untyped
// bytes (spec: resizable limits, 64 KiB pages). The harness reads
// `peak_bytes()` as the Wasm memory-usage metric — linear memory never
// shrinks, which is the behaviour the paper contrasts with JS GC.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <vector>

namespace wb::wasm {

class LinearMemory {
 public:
  static constexpr uint32_t kPageSize = 65536;
  static constexpr uint32_t kDefaultMaxPages = 65536;  // 4 GiB address space

  LinearMemory(uint32_t min_pages, std::optional<uint32_t> max_pages)
      : max_pages_(max_pages.value_or(kDefaultMaxPages)),
        bytes_(static_cast<size_t>(min_pages) * kPageSize, 0) {
    peak_bytes_ = bytes_.size();
  }

  /// memory.grow semantics: returns the previous size in pages, or -1 if
  /// the request exceeds the limit.
  int32_t grow(uint32_t delta_pages) {
    const uint64_t current = size_pages();
    const uint64_t requested = current + delta_pages;
    if (requested > max_pages_) return -1;
    bytes_.resize(static_cast<size_t>(requested) * kPageSize, 0);
    peak_bytes_ = std::max(peak_bytes_, bytes_.size());
    ++grow_count_;
    return static_cast<int32_t>(current);
  }

  [[nodiscard]] uint32_t size_pages() const {
    return static_cast<uint32_t>(bytes_.size() / kPageSize);
  }
  [[nodiscard]] size_t size_bytes() const { return bytes_.size(); }
  [[nodiscard]] size_t peak_bytes() const { return peak_bytes_; }
  [[nodiscard]] uint64_t grow_count() const { return grow_count_; }

  /// Checked typed access. `addr` is the dynamic address operand and
  /// `offset` the static immediate; the effective address is their 33-bit
  /// sum, per spec.
  template <typename T>
  [[nodiscard]] bool load(uint32_t addr, uint32_t offset, T& out) const {
    const uint64_t ea = static_cast<uint64_t>(addr) + offset;
    if (ea + sizeof(T) > bytes_.size()) return false;
    std::memcpy(&out, bytes_.data() + ea, sizeof(T));
    return true;
  }

  template <typename T>
  [[nodiscard]] bool store(uint32_t addr, uint32_t offset, T value) {
    const uint64_t ea = static_cast<uint64_t>(addr) + offset;
    if (ea + sizeof(T) > bytes_.size()) return false;
    std::memcpy(bytes_.data() + ea, &value, sizeof(T));
    return true;
  }

  /// Unchecked raw view for data-segment initialization and host I/O.
  [[nodiscard]] std::span<uint8_t> bytes() { return bytes_; }
  [[nodiscard]] std::span<const uint8_t> bytes() const { return bytes_; }

  /// Snapshot restore: replaces the full contents and the grow-derived
  /// observables. `size` must be page-aligned and within the limit.
  bool restore(std::vector<uint8_t> bytes, size_t peak_bytes, uint64_t grow_count) {
    if (bytes.size() % kPageSize != 0) return false;
    if (bytes.size() / kPageSize > max_pages_) return false;
    bytes_ = std::move(bytes);
    peak_bytes_ = std::max(peak_bytes, bytes_.size());
    grow_count_ = grow_count;
    return true;
  }

 private:
  uint64_t max_pages_;
  std::vector<uint8_t> bytes_;
  size_t peak_bytes_ = 0;
  uint64_t grow_count_ = 0;
};

}  // namespace wb::wasm
