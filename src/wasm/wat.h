// WebAssembly text-format (WAT) printer, in the linear style the paper's
// figures use (Fig. 4/7/8). Used by examples, docs, and golden tests.
#pragma once

#include <string>

#include "wasm/module.h"

namespace wb::wasm {

/// Renders the whole module as WAT.
std::string to_wat(const Module& module);

/// Renders one defined function.
std::string to_wat(const Module& module, const Function& fn, uint32_t func_index);

}  // namespace wb::wasm
