// WebAssembly binary format encoder/decoder (MVP, the subset in opcode.h).
// The encoder produces real `\0asm` binaries; code-size metrics reported by
// the harness are encoded-byte counts of these binaries.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "wasm/module.h"

namespace wb::wasm {

/// Serializes `module` into the Wasm binary format.
std::vector<uint8_t> encode(const Module& module);

/// Parses a Wasm binary. On failure returns nullopt and, if `error` is
/// non-null, stores a human-readable message.
std::optional<Module> decode(std::span<const uint8_t> bytes, std::string* error = nullptr);

}  // namespace wb::wasm
