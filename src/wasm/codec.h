// WebAssembly binary format encoder/decoder (MVP, the subset in opcode.h).
// The encoder produces real `\0asm` binaries; code-size metrics reported by
// the harness are encoded-byte counts of these binaries.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "wasm/module.h"

namespace wb::wasm {

/// Serializes `module` into the Wasm binary format.
std::vector<uint8_t> encode(const Module& module);

/// Parses a Wasm binary. On failure returns nullopt and, if `error` is
/// non-null, stores a human-readable message.
std::optional<Module> decode(std::span<const uint8_t> bytes, std::string* error = nullptr);

/// Byte offset of instruction `instr_index` within `fn`'s encoded code-entry
/// body (counting the locals run-length prefix, i.e. the offset a binary
/// tool reports relative to the function body start). Used by validator
/// diagnostics to point at the offending opcode in the real binary.
size_t encoded_instr_offset(const Module& module, const Function& fn, size_t instr_index);

}  // namespace wb::wasm
