// The schema-versioned binary trace format (Wasm-R3-style, Baek et al.):
// one recorded execution = the program bytes, the engine configuration
// the environment installed, the ordered boundary-event log, and a footer
// holding the metrics the run reported. A trace is self-contained — the
// replayer needs nothing but the trace to reproduce the run bit-for-bit
// on the virtual clock — and its serialized bytes are canonical, so the
// SHA-256 of the encoding is the trace's identity.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "attr/cause.h"
#include "replay/boundary.h"

namespace wb::replay {

inline constexpr uint32_t kTraceMagic = 0x33524257;  // "WBR3" little-endian
inline constexpr uint32_t kTraceVersion = 1;

enum class ProgramKind : uint8_t { Wasm = 0, Js = 1 };
const char* to_string(ProgramKind k);

enum class EventKind : uint8_t {
  HostCall = 0,     ///< wasm host import: target = import index
  MemoryGrow = 1,   ///< wasm memory.grow: target = delta, result = prev pages
  BuiltinCall = 2,  ///< js pure builtin: target = builtin id
  PageCharge = 3,   ///< env one-off charge: target = PagePhase, result = ps
};

struct Event {
  EventKind kind = EventKind::HostCall;
  uint32_t target = 0;
  std::vector<uint64_t> args;  ///< raw 64-bit arg patterns
  uint64_t result = 0;         ///< raw 64-bit result pattern
  bool has_result = false;

  bool operator==(const Event&) const = default;

  /// Memoization key for the canned-response host: two events with the
  /// same key must carry the same result (pure-boundary contract).
  [[nodiscard]] std::string memo_key() const;
};

/// The metrics the recorded run reported; the replay oracle demands exact
/// agreement on every field (attr lanes only when they were recorded).
struct TraceFooter {
  int32_t result = 0;
  uint64_t cost_ps = 0;
  uint64_t memory_bytes = 0;
  uint64_t code_size = 0;
  uint64_t ops = 0;
  uint64_t boundary_crossings = 0;
  bool attr_recorded = false;
  attr::CauseVec attr_ps{};

  bool operator==(const TraceFooter&) const = default;
};

struct Trace {
  std::string name;
  ProgramKind kind = ProgramKind::Wasm;
  // Provenance: which deployment setting recorded this (informational
  // for the wasm replayer, which reprices from `config`, but needed by
  // fleet-style re-pricing).
  std::string browser;
  std::string platform;
  uint8_t toolchain = 0;  ///< backend::Toolchain as integer
  uint64_t extra_boundary_crossings = 0;
  uint64_t base_memory_bytes = 0;  ///< engine memory baseline of the profile
  std::vector<uint8_t> program;    ///< wasm binary / JS source bytes
  EngineConfig config;
  std::vector<Event> events;
  TraceFooter footer;
};

/// Canonical binary encoding (LEB128 fields behind a fixed magic). Two
/// equal traces serialize to identical bytes.
std::vector<uint8_t> serialize(const Trace& trace);

/// Strict decoder; rejects bad magic, unknown versions, and truncation.
std::optional<Trace> parse(std::span<const uint8_t> bytes, std::string& error);

/// SHA-256 hex of the canonical encoding — the trace's identity.
std::string digest_hex(const Trace& trace);

/// Event-count helper split by kind (used by the reducer's reporting).
size_t count_events(const Trace& trace, EventKind kind);

}  // namespace wb::replay
