// wb::replay boundary interface (header-only, dependency-free).
//
// Both VMs and the browser environment report cross-boundary activity
// through `BoundarySink` — every host-import call with its raw argument
// and result bits, every memory.grow, every intercepted JS builtin, and
// the page's one-off load/parse/boundary charges. The sink is attached
// like `prof::Tracer`: a nullptr means no recording, and attaching one
// never charges virtual time, so all reported metrics are bit-identical
// with or without a recorder (the observable-neutrality contract that
// replay correctness rests on; see DESIGN.md §14).
//
// `JsHostSource` is the inverse direction: a canned-response host the JS
// VM consults instead of computing a pure builtin, which is how a
// recorded trace replays standalone with no environment attached.
//
// This header is included by wasm/interp.h, js/interp.h and env/env.h,
// so it must not pull in any wb library — plain types only.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace wb::replay {

/// Which page phase a one-off charge belongs to. Load/Parse charges are
/// re-applied at replay as Startup cost; Boundary as CallOverhead.
enum class PagePhase : uint8_t { Load = 0, Parse = 1, Boundary = 2 };

/// Everything the environment configured on the VM for the recorded run —
/// enough for a standalone replayer to rebuild a bit-identical virtual
/// clock without consulting env::Profile.
struct EngineConfig {
  uint8_t kind = 0;  ///< 0 = wasm Instance, 1 = js Vm
  bool baseline_enabled = true;
  bool optimizing_enabled = true;
  uint64_t tierup_threshold = 0;
  uint64_t tierup_cost_per_instr = 0;
  uint64_t grow_cost_ps = 0;       ///< wasm only
  uint64_t fuel = 0;
  uint64_t heap_bytes = 0;         ///< js only: GC trigger threshold
  std::vector<uint64_t> baseline_costs;    ///< per-OpClass cost table
  std::vector<uint64_t> optimizing_costs;  ///< per-OpClass cost table
};

/// Receives boundary events during a recorded run. All argument/result
/// values travel as raw 64-bit patterns (wasm::Value::bits; doubles are
/// bit_cast on the JS side) so recording is lossless and NaN-stable.
class BoundarySink {
 public:
  virtual ~BoundarySink() = default;

  /// A successful wasm host-import call (import index in module order).
  virtual void wasm_host_call(uint32_t import_index,
                              std::span<const uint64_t> arg_bits,
                              uint64_t result_bits, bool has_result) = 0;
  /// A memory.grow: requested delta and the previous size it returned
  /// (-1 on failure), per wasm semantics.
  virtual void wasm_memory_grow(uint32_t delta_pages, int32_t prev_pages) = 0;
  /// A pure numeric JS builtin (Math.*) with its converted numeric
  /// arguments and numeric result, as raw double bits.
  virtual void js_builtin_call(uint32_t builtin_id,
                               std::span<const uint64_t> arg_bits,
                               uint64_t result_bits) = 0;
  /// A one-off page charge (load/parse/boundary) the env applied.
  virtual void page_charge(PagePhase phase, uint64_t cost_ps) = 0;
  /// The VM configuration the env installed, emitted once per run before
  /// any other event.
  virtual void engine_config(const EngineConfig& config) = 0;
};

/// A canned-response host for JS replay: answers pure builtins from a
/// recorded trace instead of computing them. Returns false on a miss
/// (the replayed execution diverged from the recording).
class JsHostSource {
 public:
  virtual ~JsHostSource() = default;
  virtual bool lookup(uint32_t builtin_id, std::span<const uint64_t> arg_bits,
                      uint64_t& result_bits) = 0;
};

}  // namespace wb::replay
