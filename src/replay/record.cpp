#include "replay/record.h"

#include "attr/attr.h"

namespace wb::replay {

void TraceRecorder::wasm_host_call(uint32_t import_index,
                                   std::span<const uint64_t> arg_bits,
                                   uint64_t result_bits, bool has_result) {
  Event e;
  e.kind = EventKind::HostCall;
  e.target = import_index;
  e.args.assign(arg_bits.begin(), arg_bits.end());
  e.result = result_bits;
  e.has_result = has_result;
  trace_.events.push_back(std::move(e));
}

void TraceRecorder::wasm_memory_grow(uint32_t delta_pages, int32_t prev_pages) {
  Event e;
  e.kind = EventKind::MemoryGrow;
  e.target = delta_pages;
  e.result = static_cast<uint64_t>(static_cast<uint32_t>(prev_pages));
  e.has_result = true;
  trace_.events.push_back(std::move(e));
}

void TraceRecorder::js_builtin_call(uint32_t builtin_id,
                                    std::span<const uint64_t> arg_bits,
                                    uint64_t result_bits) {
  Event e;
  e.kind = EventKind::BuiltinCall;
  e.target = builtin_id;
  e.args.assign(arg_bits.begin(), arg_bits.end());
  e.result = result_bits;
  e.has_result = true;
  trace_.events.push_back(std::move(e));
}

void TraceRecorder::page_charge(PagePhase phase, uint64_t cost_ps) {
  Event e;
  e.kind = EventKind::PageCharge;
  e.target = static_cast<uint32_t>(phase);
  e.result = cost_ps;
  e.has_result = true;
  trace_.events.push_back(std::move(e));
}

void TraceRecorder::engine_config(const EngineConfig& config) {
  trace_.config = config;
}

namespace {

void fill_footer(Trace& trace, const env::PageMetrics& metrics) {
  trace.footer.result = metrics.result;
  trace.footer.cost_ps = metrics.cost_ps;
  trace.footer.memory_bytes = metrics.memory_bytes;
  trace.footer.code_size = metrics.code_size;
  trace.footer.ops = metrics.ops;
  trace.footer.boundary_crossings = metrics.boundary_crossings;
  trace.footer.attr_recorded = attr::enabled();
  trace.footer.attr_ps = metrics.attr_ps;
}

}  // namespace

std::optional<Trace> record_wasm(const std::string& name,
                                 const backend::WasmArtifact& artifact,
                                 const env::BrowserEnv& browser,
                                 env::RunOptions options, std::string& error) {
  Trace trace;
  trace.name = name;
  trace.kind = ProgramKind::Wasm;
  trace.browser = to_string(browser.profile().browser);
  trace.platform = to_string(browser.profile().platform);
  trace.toolchain = static_cast<uint8_t>(options.toolchain);
  trace.extra_boundary_crossings = options.extra_boundary_crossings;
  trace.base_memory_bytes = browser.profile().wasm_base_memory;
  trace.program = artifact.binary;

  TraceRecorder recorder(trace);
  options.recorder = &recorder;
  const env::PageMetrics metrics = browser.run_wasm(artifact, options);
  if (!metrics.ok) {
    error = metrics.error;
    return std::nullopt;
  }
  fill_footer(trace, metrics);
  return trace;
}

std::optional<Trace> record_js(const std::string& name, std::string_view source,
                               const env::BrowserEnv& browser,
                               env::RunOptions options, std::string& error) {
  Trace trace;
  trace.name = name;
  trace.kind = ProgramKind::Js;
  trace.browser = to_string(browser.profile().browser);
  trace.platform = to_string(browser.profile().platform);
  trace.toolchain = 0;
  trace.extra_boundary_crossings = options.extra_boundary_crossings;
  trace.base_memory_bytes = browser.profile().js_base_memory;
  trace.program.assign(source.begin(), source.end());

  TraceRecorder recorder(trace);
  options.recorder = &recorder;
  const env::PageMetrics metrics = browser.run_js(source, options);
  if (!metrics.ok) {
    error = metrics.error;
    return std::nullopt;
  }
  fill_footer(trace, metrics);
  return trace;
}

}  // namespace wb::replay
