#include "replay/corpus.h"

#include <algorithm>
#include <cctype>
#include <functional>

#include "benchmarks/realworld.h"
#include "benchmarks/registry.h"
#include "core/study.h"
#include "replay/record.h"
#include "support/thread_pool.h"

namespace wb::replay {

namespace {

/// "Heat-3d (math.js)" -> "heat-3d-math-js".
std::string slugify(const std::string& name) {
  std::string slug;
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!slug.empty() && slug.back() != '-') {
      slug += '-';
    }
  }
  while (!slug.empty() && slug.back() == '-') slug.pop_back();
  return slug;
}

struct Workload {
  std::string name;
  std::function<std::optional<Trace>(const env::BrowserEnv&, std::string&)> record;
};

}  // namespace

CorpusResult record_corpus(const env::BrowserEnv& browser, int jobs) {
  CorpusResult out;
  std::vector<Workload> workloads;

  // The three real-world analogs, both implementations (12 workloads).
  for (benchmarks::RealWorldProgram& prog : benchmarks::real_world_programs()) {
    if (!prog.ok) {
      out.failures.push_back({prog.name, prog.error});
      continue;
    }
    Workload w;
    w.name = prog.name;
    if (prog.is_wasm) {
      w.record = [prog = std::move(prog)](const env::BrowserEnv& env,
                                          std::string& error) {
        return record_wasm(prog.name, prog.artifact, env, prog.options, error);
      };
    } else {
      w.record = [prog = std::move(prog)](const env::BrowserEnv& env,
                                          std::string& error) {
        return record_js(prog.name, prog.js_source, env, prog.options, error);
      };
    }
    workloads.push_back(std::move(w));
  }

  // The nine manually-written JS benchmarks (Table 9).
  for (const benchmarks::ManualJs& mj : benchmarks::manual_js_benchmarks()) {
    Workload w;
    w.name = slugify(mj.name);
    w.record = [name = w.name, &mj](const env::BrowserEnv& env,
                                    std::string& error) {
      return record_js(name, mj.source, env, {}, error);
    };
    workloads.push_back(std::move(w));
  }

  // The first two compiled benchmarks with a real import boundary
  // (libm host calls) at -O2/XS. Deterministic: registry order.
  int with_imports = 0;
  for (const core::BenchSource& bench : benchmarks::all_benchmarks()) {
    if (with_imports >= 2) break;
    const core::BuildResult build =
        core::build(bench, core::InputSize::XS, ir::OptLevel::O2);
    if (!build.ok || build.wasm.imports.empty()) continue;
    ++with_imports;
    Workload w;
    w.name = "import-" + bench.name + "-wasm";
    w.record = [name = w.name, artifact = build.wasm](const env::BrowserEnv& env,
                                                      std::string& error) {
      return record_wasm(name, artifact, env, {}, error);
    };
    workloads.push_back(std::move(w));
  }

  // Each recording is self-contained, so any schedule produces the same
  // bits; only per-index slots are written concurrently.
  const size_t n = workloads.size();
  std::vector<std::optional<Trace>> traces(n);
  std::vector<std::string> errors(n);
  const unsigned effective =
      jobs > 0 ? static_cast<unsigned>(jobs) : support::hardware_jobs();
  support::parallel_for(n, effective, [&](size_t i) {
    traces[i] = workloads[i].record(browser, errors[i]);
  });

  for (size_t i = 0; i < n; ++i) {
    if (traces[i]) {
      out.traces.push_back(std::move(*traces[i]));
    } else {
      out.failures.push_back({workloads[i].name, errors[i]});
    }
  }
  std::sort(out.traces.begin(), out.traces.end(),
            [](const Trace& a, const Trace& b) { return a.name < b.name; });
  std::sort(out.failures.begin(), out.failures.end(),
            [](const CorpusFailure& a, const CorpusFailure& b) {
              return a.name < b.name;
            });
  return out;
}

}  // namespace wb::replay
