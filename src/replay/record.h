// Recording: run a program through env::BrowserEnv with a BoundarySink
// attached and capture everything a standalone replay needs — the program
// bytes, the engine configuration the env installed, the ordered boundary
// events, and the metrics the run reported (the replay oracle).
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "env/env.h"
#include "replay/trace.h"

namespace wb::replay {

/// A BoundarySink that appends into a Trace. Exposed so tests (and the
/// quicken corpus differential tests) can capture raw event streams.
class TraceRecorder final : public BoundarySink {
 public:
  explicit TraceRecorder(Trace& trace) : trace_(trace) {}

  void wasm_host_call(uint32_t import_index, std::span<const uint64_t> arg_bits,
                      uint64_t result_bits, bool has_result) override;
  void wasm_memory_grow(uint32_t delta_pages, int32_t prev_pages) override;
  void js_builtin_call(uint32_t builtin_id, std::span<const uint64_t> arg_bits,
                       uint64_t result_bits) override;
  void page_charge(PagePhase phase, uint64_t cost_ps) override;
  void engine_config(const EngineConfig& config) override;

 private:
  Trace& trace_;
};

/// Records one Wasm page run. Returns nullopt (and sets `error`) when the
/// run itself fails; the returned trace replays bit-identically.
std::optional<Trace> record_wasm(const std::string& name,
                                 const backend::WasmArtifact& artifact,
                                 const env::BrowserEnv& browser,
                                 env::RunOptions options, std::string& error);

/// Records one JS page run.
std::optional<Trace> record_js(const std::string& name, std::string_view source,
                               const env::BrowserEnv& browser,
                               env::RunOptions options, std::string& error);

}  // namespace wb::replay
