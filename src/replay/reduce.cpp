#include "replay/reduce.h"

#include <unordered_set>

#include "fuzz/reduce.h"
#include "replay/replay.h"

namespace wb::replay {

namespace {

Trace with_events(const Trace& trace, std::vector<Event> events) {
  Trace out = trace;
  out.events = std::move(events);
  return out;
}

/// Stage 1: drop MemoryGrow, dedup HostCall/BuiltinCall by memo key,
/// keep every PageCharge.
std::vector<Event> dedup_events(const Trace& trace) {
  std::vector<Event> kept;
  std::unordered_set<std::string> seen;
  for (const Event& e : trace.events) {
    switch (e.kind) {
      case EventKind::MemoryGrow:
        break;  // replay re-performs grows itself
      case EventKind::PageCharge:
        kept.push_back(e);
        break;
      case EventKind::HostCall:
      case EventKind::BuiltinCall:
        if (seen.insert(e.memo_key()).second) kept.push_back(e);
        break;
    }
  }
  return kept;
}

}  // namespace

ReduceResult reduce_trace(const Trace& trace, size_t ddmin_limit) {
  ReduceResult out;
  out.events_before = trace.events.size();
  out.bytes_before = serialize(trace).size();

  const ReplayResult baseline = verify(trace);
  if (!baseline.ok) {
    out.ok = false;
    out.error = "input trace does not verify: " + baseline.error;
    return out;
  }

  // Stage 1: deterministic dedup, then confirm the oracle still holds.
  Trace current = with_events(trace, dedup_events(trace));
  if (!verify(current).ok) current = trace;

  // Stage 2: ddmin over the removable (non-PageCharge) events.
  std::vector<size_t> removable;
  for (size_t i = 0; i < current.events.size(); ++i) {
    if (current.events[i].kind != EventKind::PageCharge) removable.push_back(i);
  }
  if (!removable.empty() && removable.size() <= ddmin_limit) {
    out.ddmin_ran = true;
    const auto build = [&](const std::vector<size_t>& kept_removable) {
      std::unordered_set<size_t> keep(kept_removable.begin(), kept_removable.end());
      std::vector<Event> events;
      events.reserve(current.events.size());
      for (size_t i = 0; i < current.events.size(); ++i) {
        const bool is_removable =
            current.events[i].kind != EventKind::PageCharge;
        if (!is_removable || keep.count(i)) events.push_back(current.events[i]);
      }
      return with_events(current, std::move(events));
    };
    const std::vector<size_t> kept = fuzz::reduce_indices(
        removable.size(), [&](const std::vector<size_t>& candidate) {
          std::vector<size_t> indices;
          indices.reserve(candidate.size());
          for (const size_t c : candidate) indices.push_back(removable[c]);
          return verify(build(indices)).ok;
        });
    std::vector<size_t> indices;
    indices.reserve(kept.size());
    for (const size_t c : kept) indices.push_back(removable[c]);
    current = build(indices);
  }

  out.events_after = current.events.size();
  out.bytes_after = serialize(current).size();
  out.reduced = std::move(current);
  return out;
}

}  // namespace wb::replay
