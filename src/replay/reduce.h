// Trace reduction (the "reduce" of record-reduce-replay): shrink the
// event log while the replay stays bit-exact. Two stages:
//
//  1. Deterministic dedup — MemoryGrow events are dropped entirely (the
//     replayed execution re-performs every grow itself) and HostCall /
//     BuiltinCall events are deduplicated by memo key (the canned host
//     only needs one response per distinct key). PageCharge events are
//     always kept: they carry the page's one-off cost.
//  2. ddmin over the surviving removable events (fuzz::reduce_indices),
//     oracle = verify(): exact PageMetrics agreement with the recorded
//     footer. Only attempted when stage 1 leaves at most `ddmin_limit`
//     removable events — the quadratic probe count is intractable for
//     the ~100k-event JS traces, and skipping is reported, not silent.
//
// Both stages only ever remove events, so a reduced trace's event log is
// a subsequence of the original's and the memo map it induces is a
// subset — replay hits can only disappear, never change (monotonicity).
#pragma once

#include <cstddef>
#include <string>

#include "replay/trace.h"

namespace wb::replay {

inline constexpr size_t kDefaultDdminLimit = 2048;

struct ReduceResult {
  bool ok = true;
  std::string error;
  Trace reduced;
  size_t events_before = 0;
  size_t events_after = 0;
  size_t bytes_before = 0;
  size_t bytes_after = 0;
  bool ddmin_ran = false;
};

/// Reduces `trace`. Fails (ok=false) when the input trace does not
/// verify in this process — a non-reproducing trace cannot be reduced.
ReduceResult reduce_trace(const Trace& trace,
                          size_t ddmin_limit = kDefaultDdminLimit);

}  // namespace wb::replay
