#include "replay/trace.h"

#include "support/leb128.h"
#include "support/sha256.h"

namespace wb::replay {

const char* to_string(ProgramKind k) {
  return k == ProgramKind::Wasm ? "wasm" : "js";
}

std::string Event::memo_key() const {
  std::string key;
  key.reserve(2 + 9 * (args.size() + 1));
  key += static_cast<char>(kind);
  std::vector<uint8_t> buf;
  support::write_uleb128(buf, target);
  for (const uint64_t a : args) support::write_uleb128(buf, a);
  key.append(buf.begin(), buf.end());
  return key;
}

size_t count_events(const Trace& trace, EventKind kind) {
  size_t n = 0;
  for (const Event& e : trace.events) n += e.kind == kind ? 1 : 0;
  return n;
}

namespace {

void put_u32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

void put_bytes(std::vector<uint8_t>& out, std::span<const uint8_t> bytes) {
  support::write_uleb128(out, bytes.size());
  out.insert(out.end(), bytes.begin(), bytes.end());
}

void put_string(std::vector<uint8_t>& out, const std::string& s) {
  put_bytes(out, std::span(reinterpret_cast<const uint8_t*>(s.data()), s.size()));
}

void put_u64s(std::vector<uint8_t>& out, const std::vector<uint64_t>& values) {
  support::write_uleb128(out, values.size());
  for (const uint64_t v : values) support::write_uleb128(out, v);
}

/// Bounded reader over the serialized bytes; any failure poisons it so
/// the decoder can check once at the end of each section.
struct Reader {
  std::span<const uint8_t> bytes;
  size_t pos = 0;
  bool ok = true;

  uint64_t uleb() {
    if (!ok) return 0;
    const auto r = support::read_uleb128(bytes.subspan(pos));
    if (!r) {
      ok = false;
      return 0;
    }
    pos += r->size;
    return r->value;
  }
  int64_t sleb() {
    if (!ok) return 0;
    const auto r = support::read_sleb128(bytes.subspan(pos));
    if (!r) {
      ok = false;
      return 0;
    }
    pos += r->size;
    return r->value;
  }
  uint8_t byte() {
    if (!ok || pos >= bytes.size()) {
      ok = false;
      return 0;
    }
    return bytes[pos++];
  }
  uint32_t u32() {
    if (!ok || pos + 4 > bytes.size()) {
      ok = false;
      return 0;
    }
    const uint32_t v = static_cast<uint32_t>(bytes[pos]) |
                       static_cast<uint32_t>(bytes[pos + 1]) << 8 |
                       static_cast<uint32_t>(bytes[pos + 2]) << 16 |
                       static_cast<uint32_t>(bytes[pos + 3]) << 24;
    pos += 4;
    return v;
  }
  std::vector<uint8_t> blob() {
    const uint64_t n = uleb();
    if (!ok || pos + n > bytes.size()) {
      ok = false;
      return {};
    }
    std::vector<uint8_t> out(bytes.begin() + static_cast<ptrdiff_t>(pos),
                             bytes.begin() + static_cast<ptrdiff_t>(pos + n));
    pos += n;
    return out;
  }
  std::string str() {
    const std::vector<uint8_t> b = blob();
    return {b.begin(), b.end()};
  }
  std::vector<uint64_t> u64s() {
    const uint64_t n = uleb();
    // Each u64 takes >= 1 byte, so a count beyond the remaining bytes is
    // malformed — reject before reserving.
    if (!ok || n > bytes.size() - pos) {
      ok = false;
      return {};
    }
    std::vector<uint64_t> out;
    out.reserve(n);
    for (uint64_t i = 0; i < n && ok; ++i) out.push_back(uleb());
    return out;
  }
};

void put_config(std::vector<uint8_t>& out, const EngineConfig& c) {
  out.push_back(c.kind);
  out.push_back(c.baseline_enabled ? 1 : 0);
  out.push_back(c.optimizing_enabled ? 1 : 0);
  support::write_uleb128(out, c.tierup_threshold);
  support::write_uleb128(out, c.tierup_cost_per_instr);
  support::write_uleb128(out, c.grow_cost_ps);
  support::write_uleb128(out, c.fuel);
  support::write_uleb128(out, c.heap_bytes);
  put_u64s(out, c.baseline_costs);
  put_u64s(out, c.optimizing_costs);
}

EngineConfig read_config(Reader& r) {
  EngineConfig c;
  c.kind = r.byte();
  c.baseline_enabled = r.byte() != 0;
  c.optimizing_enabled = r.byte() != 0;
  c.tierup_threshold = r.uleb();
  c.tierup_cost_per_instr = r.uleb();
  c.grow_cost_ps = r.uleb();
  c.fuel = r.uleb();
  c.heap_bytes = r.uleb();
  c.baseline_costs = r.u64s();
  c.optimizing_costs = r.u64s();
  return c;
}

}  // namespace

std::vector<uint8_t> serialize(const Trace& trace) {
  std::vector<uint8_t> out;
  out.reserve(256 + trace.program.size() + trace.events.size() * 8);
  put_u32(out, kTraceMagic);
  support::write_uleb128(out, kTraceVersion);
  put_string(out, trace.name);
  out.push_back(static_cast<uint8_t>(trace.kind));
  put_string(out, trace.browser);
  put_string(out, trace.platform);
  out.push_back(trace.toolchain);
  support::write_uleb128(out, trace.extra_boundary_crossings);
  support::write_uleb128(out, trace.base_memory_bytes);
  put_bytes(out, trace.program);
  put_config(out, trace.config);

  support::write_uleb128(out, trace.events.size());
  for (const Event& e : trace.events) {
    out.push_back(static_cast<uint8_t>(e.kind));
    support::write_uleb128(out, e.target);
    put_u64s(out, e.args);
    support::write_uleb128(out, e.result);
    out.push_back(e.has_result ? 1 : 0);
  }

  const TraceFooter& f = trace.footer;
  support::write_sleb128(out, f.result);
  support::write_uleb128(out, f.cost_ps);
  support::write_uleb128(out, f.memory_bytes);
  support::write_uleb128(out, f.code_size);
  support::write_uleb128(out, f.ops);
  support::write_uleb128(out, f.boundary_crossings);
  out.push_back(f.attr_recorded ? 1 : 0);
  for (const uint64_t lane : f.attr_ps) support::write_uleb128(out, lane);
  return out;
}

std::optional<Trace> parse(std::span<const uint8_t> bytes, std::string& error) {
  Reader r{bytes};
  if (r.u32() != kTraceMagic) {
    error = "bad trace magic";
    return std::nullopt;
  }
  const uint64_t version = r.uleb();
  if (version != kTraceVersion) {
    error = "unsupported trace version " + std::to_string(version);
    return std::nullopt;
  }
  Trace t;
  t.name = r.str();
  t.kind = static_cast<ProgramKind>(r.byte());
  t.browser = r.str();
  t.platform = r.str();
  t.toolchain = r.byte();
  t.extra_boundary_crossings = r.uleb();
  t.base_memory_bytes = r.uleb();
  t.program = r.blob();
  t.config = read_config(r);

  const uint64_t n_events = r.uleb();
  if (!r.ok || n_events > bytes.size()) {
    error = "truncated trace header";
    return std::nullopt;
  }
  t.events.reserve(n_events);
  for (uint64_t i = 0; i < n_events && r.ok; ++i) {
    Event e;
    e.kind = static_cast<EventKind>(r.byte());
    e.target = static_cast<uint32_t>(r.uleb());
    e.args = r.u64s();
    e.result = r.uleb();
    e.has_result = r.byte() != 0;
    t.events.push_back(std::move(e));
  }

  TraceFooter& f = t.footer;
  f.result = static_cast<int32_t>(r.sleb());
  f.cost_ps = r.uleb();
  f.memory_bytes = r.uleb();
  f.code_size = r.uleb();
  f.ops = r.uleb();
  f.boundary_crossings = r.uleb();
  f.attr_recorded = r.byte() != 0;
  for (uint64_t& lane : f.attr_ps) lane = r.uleb();
  if (!r.ok) {
    error = "truncated trace";
    return std::nullopt;
  }
  if (r.pos != bytes.size()) {
    error = "trailing bytes after trace";
    return std::nullopt;
  }
  return t;
}

std::string digest_hex(const Trace& trace) {
  const std::vector<uint8_t> bytes = serialize(trace);
  return support::sha256_hex(bytes);
}

}  // namespace wb::replay
