// The replay corpus: the recorded workload set the golden gate, the
// fuzzer seeds, and the fleet module mixes draw from. It covers the
// three real-world analogs in both implementations (Long.js mul/div/mod,
// Hyphenopoly en-us/fr, FFmpeg), the manually-written JS benchmarks
// (Table 9), and the first (up to two) compiled benchmarks whose -O2/XS
// Wasm artifact actually imports host functions (the libm boundary —
// most of the corpus compiles to import-free modules, which record no
// host calls and would leave the wasm HostCall path untested).
#pragma once

#include <string>
#include <vector>

#include "env/env.h"
#include "replay/trace.h"

namespace wb::replay {

struct CorpusFailure {
  std::string name;
  std::string error;
};

struct CorpusResult {
  std::vector<Trace> traces;  ///< sorted by name
  std::vector<CorpusFailure> failures;

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Records every corpus workload in `browser`, `jobs` at a time. Each
/// recording is self-contained (own VMs, own virtual clock), so traces
/// are bit-identical at any job count; rows are name-sorted to keep the
/// output order schedule-independent.
CorpusResult record_corpus(const env::BrowserEnv& browser, int jobs);

}  // namespace wb::replay
