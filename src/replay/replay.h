// Standalone replay: re-execute a recorded trace with no environment
// attached. The program bytes come from the trace, the virtual clock is
// rebuilt from the recorded EngineConfig, host imports and intercepted
// JS builtins are answered by a canned-response shim keyed on the
// recorded events, and the page's one-off charges are re-applied from
// the PageCharge events. The result is bit-exact: every PageMetrics
// field the original run reported is reproduced on the virtual clock.
#pragma once

#include <string>

#include "env/env.h"
#include "replay/trace.h"

namespace wb::replay {

struct ReplayResult {
  bool ok = true;
  std::string error;
  env::PageMetrics metrics;
};

/// Replays `trace` standalone (canned hosts, recorded engine config and
/// page charges). Fails on decode/compile errors, canned-host misses
/// (the execution diverged from the recording), or traps.
ReplayResult replay_trace(const Trace& trace);

/// Replays and demands exact agreement with the recorded footer —
/// result, cost_ps, memory, code size, ops, boundary crossings, and the
/// attr lanes when both the recording and this process have attribution
/// enabled. This is the reducer's oracle and the golden gate's check.
ReplayResult verify(const Trace& trace);

/// Re-prices a trace in a different deployment setting: same program,
/// same canned boundary responses, but the engine configuration and the
/// page's load/parse/boundary charges are rebuilt from `browser`'s
/// profile exactly as env::BrowserEnv would install them. This is how
/// wb::fleet runs replay modules across its device mix.
ReplayResult replay_in_env(const Trace& trace, const env::BrowserEnv& browser);

}  // namespace wb::replay
