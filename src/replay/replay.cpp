#include "replay/replay.h"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "attr/attr.h"
#include "js/engine.h"
#include "snap/snap.h"
#include "wasm/codec.h"

namespace wb::replay {

namespace {

using MemoMap = std::unordered_map<std::string, const Event*>;

/// Canned responses: one entry per distinct (kind, target, args) key.
/// Two recorded events with the same key but different results mean the
/// boundary was not pure — refuse to replay rather than guess.
bool build_memo(const Trace& trace, MemoMap& memo, std::string& error) {
  for (const Event& e : trace.events) {
    if (e.kind != EventKind::HostCall && e.kind != EventKind::BuiltinCall) continue;
    const auto [it, inserted] = memo.emplace(e.memo_key(), &e);
    if (!inserted && (it->second->result != e.result ||
                      it->second->has_result != e.has_result)) {
      error = "impure boundary: conflicting results for one memo key";
      return false;
    }
  }
  return true;
}

uint64_t phase_charge(const Trace& trace, PagePhase phase) {
  uint64_t total = 0;
  for (const Event& e : trace.events) {
    if (e.kind == EventKind::PageCharge &&
        e.target == static_cast<uint32_t>(phase)) {
      total += e.result;
    }
  }
  return total;
}

/// How the wasm replay prices the page: either from the recorded
/// PageCharge events (standalone replay) or from a browser profile's
/// formulas (fleet-style re-pricing).
struct WasmPricing {
  EngineConfig config;
  uint64_t base_memory_bytes = 0;
  uint64_t load_ps = 0;
  bool boundary_from_trace = true;
  uint64_t boundary_ps = 0;       ///< when boundary_from_trace
  uint64_t boundary_cost_ps = 0;  ///< per crossing, otherwise
};

ReplayResult replay_wasm(const Trace& trace, const WasmPricing& pricing) {
  ReplayResult out;
  const EngineConfig& cfg = pricing.config;
  if (cfg.baseline_costs.size() != wasm::kOpClassCount ||
      cfg.optimizing_costs.size() != wasm::kOpClassCount) {
    out.ok = false;
    out.error = "engine config: bad cost-table size";
    return out;
  }

  std::string error;
  const auto module = wasm::decode(trace.program, &error);
  if (!module) {
    out.ok = false;
    out.error = "decode failed: " + error;
    return out;
  }

  MemoMap memo;
  if (!build_memo(trace, memo, out.error)) {
    out.ok = false;
    return out;
  }

  bool memo_miss = false;
  const auto make_host_fns = [&memo, &memo_miss, &module]() {
    std::vector<wasm::HostFn> host_fns;
    host_fns.reserve(module->imports.size());
    for (uint32_t i = 0; i < module->imports.size(); ++i) {
      host_fns.push_back([&memo, &memo_miss, i](std::span<const wasm::Value> args,
                                                wasm::Value* result) -> wasm::Trap {
        Event probe;
        probe.kind = EventKind::HostCall;
        probe.target = i;
        probe.args.reserve(args.size());
        for (const wasm::Value& a : args) probe.args.push_back(a.bits);
        const auto it = memo.find(probe.memo_key());
        if (it == memo.end()) {
          memo_miss = true;
          return wasm::Trap::HostError;
        }
        if (it->second->has_result) result->bits = it->second->result;
        return wasm::Trap::None;
      });
    }
    return host_fns;
  };
  const auto configure = [&cfg](wasm::Instance& i) {
    wasm::CostTable baseline{}, optimizing{};
    std::copy(cfg.baseline_costs.begin(), cfg.baseline_costs.end(),
              baseline.begin());
    std::copy(cfg.optimizing_costs.begin(), cfg.optimizing_costs.end(),
              optimizing.begin());
    i.set_cost_tables(baseline, optimizing);
    wasm::TierPolicy tiers;
    tiers.baseline_enabled = cfg.baseline_enabled;
    tiers.optimizing_enabled = cfg.optimizing_enabled;
    tiers.tierup_threshold = cfg.tierup_threshold;
    tiers.tierup_cost_per_instr = cfg.tierup_cost_per_instr;
    i.set_tier_policy(tiers);
    i.set_grow_cost(cfg.grow_cost_ps);
    i.set_fuel(cfg.fuel);
  };

  wasm::Instance inst0(*module, make_host_fns());
  configure(inst0);

  inst0.charge(pricing.load_ps);

  const wasm::InvokeResult init = inst0.invoke("__init", {});
  if (!init.ok()) {
    out.ok = false;
    out.error = memo_miss ? "replay divergence: no canned response for host call"
                          : std::string("instantiate trapped: ") +
                                wasm::to_string(init.trap);
    return out;
  }

  // Snapshot/resume dogfood: when wb::snap is active, `main` runs on a
  // VM reconstructed from the post-instantiate snapshot (through the
  // full `.wbsnap` codec). Exact resume is observable-identical, so the
  // golden replay gate enforces resume correctness on every trace.
  std::optional<wasm::Instance> resumed;
  wasm::Instance* active = &inst0;
  if (snap::snap_default()) {
    const snap::WasmSnapshot captured = snap::snapshot_wasm(inst0, trace.name);
    std::string snap_error;
    const auto parsed = snap::parse_wasm(snap::serialize(captured), snap_error);
    if (!parsed || parsed->sha256 != captured.sha256) {
      out.ok = false;
      out.error = "snapshot round-trip failed: " + snap_error;
      return out;
    }
    resumed.emplace(*module, make_host_fns());
    configure(*resumed);
    if (!snap::resume_wasm(*resumed, *parsed, snap::Resume::Exact)) {
      out.ok = false;
      out.error = "snapshot resume failed: shape mismatch";
      return out;
    }
    active = &*resumed;
  }
  wasm::Instance& inst = *active;

  const wasm::InvokeResult r = inst.invoke("main", {});
  if (!r.ok()) {
    out.ok = false;
    out.error = memo_miss
                    ? "replay divergence: no canned response for host call"
                    : std::string("main trapped: ") + wasm::to_string(r.trap);
    return out;
  }

  const uint64_t crossings =
      inst.stats().host_calls + 2 + trace.extra_boundary_crossings;
  const uint64_t boundary_ps = pricing.boundary_from_trace
                                   ? pricing.boundary_ps
                                   : crossings * pricing.boundary_cost_ps;
  inst.charge(boundary_ps, attr::Cause::CallOverhead);

  if (attr::enabled()) {
    out.metrics.attr_ps =
        attr::decompose_wasm(inst.attr_stats(), inst.cost_tables());
  }
  out.metrics.result = r.value.as_i32();
  out.metrics.time_ms = static_cast<double>(inst.stats().cost_ps) / 1e9;
  out.metrics.cost_ps = inst.stats().cost_ps;
  out.metrics.memory_bytes =
      pricing.base_memory_bytes + (inst.memory() ? inst.memory()->peak_bytes() : 0);
  out.metrics.code_size = trace.program.size();
  out.metrics.ops = inst.stats().ops_executed;
  out.metrics.boundary_crossings = crossings;
  return out;
}

class MemoJsHost final : public JsHostSource {
 public:
  explicit MemoJsHost(const MemoMap& memo) : memo_(memo) {}

  bool lookup(uint32_t builtin_id, std::span<const uint64_t> arg_bits,
              uint64_t& result_bits) override {
    Event probe;
    probe.kind = EventKind::BuiltinCall;
    probe.target = builtin_id;
    probe.args.assign(arg_bits.begin(), arg_bits.end());
    const auto it = memo_.find(probe.memo_key());
    if (it == memo_.end()) return false;
    result_bits = it->second->result;
    return true;
  }

 private:
  const MemoMap& memo_;
};

struct JsPricing {
  EngineConfig config;
  uint64_t base_memory_bytes = 0;
  uint64_t parse_ps = 0;
};

ReplayResult replay_js(const Trace& trace, const JsPricing& pricing) {
  ReplayResult out;
  const EngineConfig& cfg = pricing.config;
  if (cfg.baseline_costs.size() != js::kJsOpClassCount ||
      cfg.optimizing_costs.size() != js::kJsOpClassCount) {
    out.ok = false;
    out.error = "engine config: bad cost-table size";
    return out;
  }

  const std::string_view source(reinterpret_cast<const char*>(trace.program.data()),
                                trace.program.size());
  std::string error;
  const auto code = js::compile_script(source, error);
  if (!code) {
    out.ok = false;
    out.error = "script error: " + error;
    return out;
  }

  MemoMap memo;
  if (!build_memo(trace, memo, out.error)) {
    out.ok = false;
    return out;
  }
  MemoJsHost host(memo);

  const auto configure = [&cfg, &host](js::Vm& v) {
    js::JsCostTable baseline{}, optimized{};
    std::copy(cfg.baseline_costs.begin(), cfg.baseline_costs.end(),
              baseline.begin());
    std::copy(cfg.optimizing_costs.begin(), cfg.optimizing_costs.end(),
              optimized.begin());
    v.set_cost_tables(baseline, optimized);
    js::JsTierPolicy tiers;
    tiers.jit_enabled = cfg.optimizing_enabled;
    tiers.tierup_threshold = cfg.tierup_threshold;
    tiers.tierup_cost_per_instr = cfg.tierup_cost_per_instr;
    v.set_tier_policy(tiers);
    v.set_fuel(cfg.fuel);
    v.set_replay_host(&host);
  };

  js::Heap heap0(cfg.heap_bytes);
  js::Vm vm0(*code, heap0);
  configure(vm0);

  vm0.charge(pricing.parse_ps);

  const js::Vm::Result top = vm0.run_top_level();
  if (!top.ok) {
    out.ok = false;
    out.error = "top-level: " + top.error;
    return out;
  }

  // Snapshot/resume dogfood (see replay_wasm): `main` runs on a VM
  // reconstructed from the post-top-level snapshot via the codec.
  std::optional<js::Heap> resumed_heap;
  std::optional<js::Vm> resumed_vm;
  js::Heap* active_heap = &heap0;
  js::Vm* active_vm = &vm0;
  if (snap::snap_default()) {
    const snap::JsSnapshot captured = snap::snapshot_js(vm0, trace.name);
    std::string snap_error;
    const auto parsed = snap::parse_js(snap::serialize(captured), snap_error);
    if (!parsed || parsed->sha256 != captured.sha256) {
      out.ok = false;
      out.error = "snapshot round-trip failed: " + snap_error;
      return out;
    }
    resumed_heap.emplace(cfg.heap_bytes);
    resumed_vm.emplace(*code, *resumed_heap);
    configure(*resumed_vm);
    if (!snap::resume_js(*resumed_vm, *parsed, snap::Resume::Exact)) {
      out.ok = false;
      out.error = "snapshot resume failed: shape mismatch";
      return out;
    }
    active_heap = &*resumed_heap;
    active_vm = &*resumed_vm;
  }
  js::Heap& heap = *active_heap;
  js::Vm& vm = *active_vm;

  const js::Vm::Result r = vm.call_function("main", {});
  if (!r.ok) {
    out.ok = false;
    out.error = "main: " + r.error;
    return out;
  }
  out.metrics.result = r.value.is_number() ? js::to_int32(r.value.num()) : 0;

  heap.collect();
  if (attr::enabled()) {
    out.metrics.attr_ps = attr::decompose_js(vm.attr_stats(), vm.cost_tables());
  }
  out.metrics.time_ms = static_cast<double>(vm.stats().cost_ps) / 1e9;
  out.metrics.cost_ps = vm.stats().cost_ps;
  out.metrics.memory_bytes =
      pricing.base_memory_bytes +
      std::max(heap.stats().peak_live_bytes, heap.stats().live_bytes);
  out.metrics.code_size = trace.program.size();
  out.metrics.ops = vm.stats().ops_executed;
  return out;
}

}  // namespace

ReplayResult replay_trace(const Trace& trace) {
  if (trace.kind == ProgramKind::Wasm) {
    WasmPricing pricing;
    pricing.config = trace.config;
    pricing.base_memory_bytes = trace.base_memory_bytes;
    pricing.load_ps = phase_charge(trace, PagePhase::Load);
    pricing.boundary_from_trace = true;
    pricing.boundary_ps = phase_charge(trace, PagePhase::Boundary);
    return replay_wasm(trace, pricing);
  }
  JsPricing pricing;
  pricing.config = trace.config;
  pricing.base_memory_bytes = trace.base_memory_bytes;
  pricing.parse_ps = phase_charge(trace, PagePhase::Parse);
  return replay_js(trace, pricing);
}

ReplayResult verify(const Trace& trace) {
  ReplayResult out = replay_trace(trace);
  if (!out.ok) return out;
  const TraceFooter& f = trace.footer;
  const env::PageMetrics& m = out.metrics;
  const auto mismatch = [&](const char* field, uint64_t got, uint64_t want) {
    out.ok = false;
    out.error = std::string("replay mismatch: ") + field + " " +
                std::to_string(got) + " != recorded " + std::to_string(want);
  };
  if (m.result != f.result) {
    mismatch("result", static_cast<uint64_t>(m.result),
             static_cast<uint64_t>(f.result));
  } else if (m.cost_ps != f.cost_ps) {
    mismatch("cost_ps", m.cost_ps, f.cost_ps);
  } else if (m.memory_bytes != f.memory_bytes) {
    mismatch("memory_bytes", m.memory_bytes, f.memory_bytes);
  } else if (m.code_size != f.code_size) {
    mismatch("code_size", m.code_size, f.code_size);
  } else if (m.ops != f.ops) {
    mismatch("ops", m.ops, f.ops);
  } else if (m.boundary_crossings != f.boundary_crossings) {
    mismatch("boundary_crossings", m.boundary_crossings, f.boundary_crossings);
  } else if (f.attr_recorded && attr::enabled() && m.attr_ps != f.attr_ps) {
    out.ok = false;
    out.error = "replay mismatch: attr lanes differ";
  }
  return out;
}

ReplayResult replay_in_env(const Trace& trace, const env::BrowserEnv& browser) {
  const env::Profile& profile = browser.profile();
  env::RunOptions options;
  options.toolchain = static_cast<backend::Toolchain>(trace.toolchain);
  options.extra_boundary_crossings = trace.extra_boundary_crossings;

  if (trace.kind == ProgramKind::Wasm) {
    WasmPricing pricing;
    pricing.config.kind = 0;
    pricing.config.tierup_threshold = profile.wasm_tierup_threshold;
    pricing.config.tierup_cost_per_instr = 400;
    pricing.config.grow_cost_ps = profile.grow_cost_ps;
    pricing.config.fuel = 4'000'000'000ull;
    const wasm::CostTable base = browser.wasm_tier_costs(false, options);
    const wasm::CostTable opt = browser.wasm_tier_costs(true, options);
    pricing.config.baseline_costs.assign(base.begin(), base.end());
    pricing.config.optimizing_costs.assign(opt.begin(), opt.end());
    pricing.base_memory_bytes = profile.wasm_base_memory;
    pricing.load_ps = profile.page_overhead_ps +
                      profile.wasm_instantiate_overhead_ps +
                      profile.wasm_decode_cost_per_byte * trace.program.size();
    pricing.boundary_from_trace = false;
    pricing.boundary_cost_ps = profile.boundary_cost_ps;
    return replay_wasm(trace, pricing);
  }

  JsPricing pricing;
  pricing.config.kind = 1;
  pricing.config.tierup_threshold = profile.js_tierup_threshold;
  pricing.config.tierup_cost_per_instr = 1500;
  pricing.config.fuel = 4'000'000'000ull;
  pricing.config.heap_bytes = 4 << 20;
  const js::JsCostTable base = browser.js_tier_costs(false);
  const js::JsCostTable opt = browser.js_tier_costs(true);
  pricing.config.baseline_costs.assign(base.begin(), base.end());
  pricing.config.optimizing_costs.assign(opt.begin(), opt.end());
  pricing.base_memory_bytes = profile.js_base_memory;
  pricing.parse_ps = profile.page_overhead_ps +
                     profile.js_parse_cost_per_byte * trace.program.size();
  return replay_js(trace, pricing);
}

}  // namespace wb::replay
