// wb::attr — cause taxonomy for overhead attribution (header-only part).
//
// Every picosecond both VMs charge to the virtual clock is tagged with a
// *cause*: the "Mind the Gap" decomposition (Jangda et al., PAPERS.md) of
// why a managed target trails native — guard checks, locals/shadow-stack
// traffic, call and host-boundary crossings, growth quanta, dispatch —
// with "useful arithmetic" as the residual that native would also pay.
//
// This header is dependency-free so both VM headers can include it; the
// split tables and decomposition live in attr.h / attr.cpp.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace wb::attr {

/// Why a charged picosecond was spent. Order is part of the attr.json
/// schema (schema_version gates changes).
enum class Cause : uint8_t {
  Useful,        ///< irreducible arithmetic/data work native also pays
  Dispatch,      ///< interpreter dispatch / control sequencing overhead
  BoundsCheck,   ///< linear-memory & array guard checks
  LocalsTraffic, ///< locals/shadow-stack/operand-stack traffic
  CallOverhead,  ///< call sequences + JS<->Wasm/host boundary crossings
  MemoryGrowth,  ///< memory.grow quanta and page accounting
  TierCompile,   ///< baseline->optimizing tier-up compile charges
  Startup,       ///< page/parse/decode/instantiate one-off charges
  GcPause,       ///< JS GC work amortized into allocation pricing
  IcMiss,        ///< JS inline-cache / shape-check penalties
  kCount,
};

inline constexpr size_t kCauseCount = static_cast<size_t>(Cause::kCount);

/// Picoseconds per cause; the invariant everywhere is
/// sum(CauseVec) == the exact cost_ps the decomposed run charged.
using CauseVec = std::array<uint64_t, kCauseCount>;

constexpr const char* to_string(Cause c) {
  switch (c) {
    case Cause::Useful: return "useful";
    case Cause::Dispatch: return "dispatch";
    case Cause::BoundsCheck: return "bounds_check";
    case Cause::LocalsTraffic: return "locals_traffic";
    case Cause::CallOverhead: return "call_overhead";
    case Cause::MemoryGrowth: return "memory_growth";
    case Cause::TierCompile: return "tier_compile";
    case Cause::Startup: return "startup";
    case Cause::GcPause: return "gc_pause";
    case Cause::IcMiss: return "ic_miss";
    case Cause::kCount: break;
  }
  return "?";
}

/// Per-VM attribution counters, maintained unconditionally by both
/// execution loops (counting touches no observable, so attribution
/// cannot perturb the golden metrics). `class_counts[tier][cls]` is the
/// number of classic-op charges priced from that tier's cost table —
/// quickened execution flushes its packed byte-lane accumulators here —
/// and `direct_ps` holds the one-off charges (tier-up compiles, grow
/// quanta, startup, boundary crossings) already tagged at the source.
///
/// The exactness invariant both VMs maintain:
///   cost_ps == sum(class_counts[t][c] * cost_table[t][c]) + sum(direct_ps)
template <size_t NClasses>
struct VmAttr {
  std::array<std::array<uint64_t, NClasses>, 2> class_counts{};
  CauseVec direct_ps{};

  void add_direct(Cause cause, uint64_t ps) {
    direct_ps[static_cast<size_t>(cause)] += ps;
  }
};

}  // namespace wb::attr
