// wb::attr — exact cause decomposition of virtual-clock charges.
//
// The VMs count *what* they charged (per-tier, per-OpClass executed-op
// counts plus cause-tagged one-off charges; see attr/cause.h). This
// module turns those counters into per-cause picosecond vectors by
// splitting each class's per-op cost across causes with fixed per-mille
// policy tables (e.g. a Wasm Load is part dispatch, part bounds check,
// part useful memory traffic — the "Mind the Gap" decomposition).
//
// Exactness: the split of one cost C computes floor shares for every
// non-primary cause and gives the primary cause the remainder, so the
// shares always sum to exactly C. Decomposition then multiplies shares
// by integer counts, so sum(decompose(...)) reproduces the VM's charged
// cost_ps bit-exactly — which is what tests/attr_test.cpp asserts for
// every benchmark, VM, and tier.
//
// The per-mille fractions themselves are modeling policy (documented in
// DESIGN.md §13), not measurements; the *sums* are exact and golden-gated.
#pragma once

#include "attr/cause.h"
#include "js/interp.h"
#include "wasm/interp.h"

namespace wb::attr {

/// Process-wide toggle for *report-level* attribution (PageMetrics::attr_ps
/// population in env). VM-side counting is always on and can never change
/// an observable; the toggle exists so tests can prove that. Default: on.
void set_enabled(bool on);
bool enabled();

/// Exact per-cause split of one class's per-op cost: sum == cost_ps.
CauseVec split_wasm_class(wasm::OpClass cls, uint64_t cost_ps);
CauseVec split_js_class(js::JsOpClass cls, uint64_t cost_ps);

/// Full decomposition of one run's counters against the cost tables the
/// run actually priced from. sum(result) == the cost_ps the VM charged.
CauseVec decompose_wasm(const wasm::AttrStats& a,
                        const std::array<wasm::CostTable, 2>& tables);
CauseVec decompose_js(const js::JsAttrStats& a,
                      const std::array<js::JsCostTable, 2>& tables);

/// The counter-side total: sum(class_counts * tables) + sum(direct_ps).
/// Equals the VM's charged cost_ps (the invariant attr_test verifies).
template <size_t N>
uint64_t counted_cost_ps(const VmAttr<N>& a,
                         const std::array<std::array<uint64_t, N>, 2>& tables) {
  uint64_t total = 0;
  for (size_t t = 0; t < 2; ++t) {
    for (size_t c = 0; c < N; ++c) total += a.class_counts[t][c] * tables[t][c];
  }
  for (const uint64_t d : a.direct_ps) total += d;
  return total;
}

inline uint64_t total(const CauseVec& v) {
  uint64_t t = 0;
  for (const uint64_t x : v) t += x;
  return t;
}

/// a += b, lane-wise. (CauseVec is a std::array alias, so a real
/// operator+= would not be found by ADL outside this namespace.)
inline void accumulate(CauseVec& a, const CauseVec& b) {
  for (size_t i = 0; i < kCauseCount; ++i) a[i] += b[i];
}

}  // namespace wb::attr
