#include "attr/attr.h"

namespace wb::attr {
namespace {

bool g_enabled = true;

/// One cause's per-mille share of a class cost. Entry 0 of a split is the
/// *primary* cause: it absorbs the integer-division remainder, so the
/// shares of any cost always sum to exactly that cost.
struct Share {
  Cause cause = Cause::Useful;
  uint32_t permille = 0;
};
using ClassSplit = std::array<Share, 4>;

// --------------------------------------------------------------- Wasm
//
// The decomposition "Mind the Gap" measured with performance counters,
// expressed as pricing policy over our OpClass cost tables: loads and
// stores carry the bounds-check guard, locals/consts are shadow-stack
// traffic, branches and Misc are pure dispatch, calls are mostly frame
// setup + boundary-adjacent overhead, and the arithmetic classes are
// mostly work native would also do (the residual "useful" lane).
// Fractions are per-mille; entry 0 takes the rounding remainder.
constexpr std::array<ClassSplit, wasm::kOpClassCount> kWasmSplits = {{
    // Const: materialize + push to the operand stack.
    {{{Cause::LocalsTraffic, 500}, {Cause::Dispatch, 200}, {Cause::Useful, 300}}},
    // LocalVar: local.get/set/tee — the shadow-stack traffic lane.
    {{{Cause::LocalsTraffic, 850}, {Cause::Dispatch, 150}}},
    // GlobalVar
    {{{Cause::LocalsTraffic, 850}, {Cause::Dispatch, 150}}},
    // IntArith
    {{{Cause::Useful, 850}, {Cause::Dispatch, 150}}},
    // IntMul
    {{{Cause::Useful, 920}, {Cause::Dispatch, 80}}},
    // IntDiv: the 3.4ns latency is nearly all the divider itself.
    {{{Cause::Useful, 980}, {Cause::Dispatch, 20}}},
    // FloatArith
    {{{Cause::Useful, 920}, {Cause::Dispatch, 80}}},
    // FloatDiv
    {{{Cause::Useful, 980}, {Cause::Dispatch, 20}}},
    // Convert
    {{{Cause::Useful, 850}, {Cause::Dispatch, 150}}},
    // Load: explicit guard before the access.
    {{{Cause::Useful, 520}, {Cause::BoundsCheck, 380}, {Cause::Dispatch, 100}}},
    // Store
    {{{Cause::Useful, 520}, {Cause::BoundsCheck, 380}, {Cause::Dispatch, 100}}},
    // Branch: blocks/br/br_if/select/drop — control sequencing.
    {{{Cause::Dispatch, 1000}}},
    // Call: frame setup, arg shuffling through the shadow stack.
    {{{Cause::CallOverhead, 700}, {Cause::LocalsTraffic, 180}, {Cause::Dispatch, 120}}},
    // MemoryGrow (base op cost; the per-grow quantum is charged directly).
    {{{Cause::MemoryGrowth, 1000}}},
    // Misc
    {{{Cause::Dispatch, 1000}}},
}};

// ----------------------------------------------------------------- JS
//
// The JS tables fold engine-model costs the classes already price in:
// Prop/BoxedIndex carry the IC-miss/shape-check lane, Index the array
// guard, Alloc the amortized GC share (the mark-sweep hook itself charges
// nothing on the virtual clock — DESIGN.md §13 documents the folding).
constexpr std::array<ClassSplit, js::kJsOpClassCount> kJsSplits = {{
    // Const
    {{{Cause::Useful, 500}, {Cause::Dispatch, 300}, {Cause::LocalsTraffic, 200}}},
    // Local
    {{{Cause::LocalsTraffic, 700}, {Cause::Dispatch, 300}}},
    // Global: scope-object lookup.
    {{{Cause::LocalsTraffic, 500}, {Cause::IcMiss, 300}, {Cause::Dispatch, 200}}},
    // Arith
    {{{Cause::Useful, 850}, {Cause::Dispatch, 150}}},
    // BitOp: the cheap int32 fast path.
    {{{Cause::Useful, 800}, {Cause::Dispatch, 200}}},
    // Compare
    {{{Cause::Useful, 850}, {Cause::Dispatch, 150}}},
    // Branch
    {{{Cause::Dispatch, 1000}}},
    // Stack: push/pop/dup — operand-stack traffic.
    {{{Cause::LocalsTraffic, 700}, {Cause::Dispatch, 300}}},
    // Call
    {{{Cause::CallOverhead, 750}, {Cause::LocalsTraffic, 150}, {Cause::Dispatch, 100}}},
    // Return
    {{{Cause::CallOverhead, 800}, {Cause::Dispatch, 200}}},
    // Prop: shape check + slot load.
    {{{Cause::IcMiss, 500}, {Cause::Useful, 400}, {Cause::Dispatch, 100}}},
    // Index: typed-array access with its guard.
    {{{Cause::Useful, 500}, {Cause::BoundsCheck, 400}, {Cause::Dispatch, 100}}},
    // Alloc: allocation + the amortized GC share.
    {{{Cause::Useful, 600}, {Cause::GcPause, 350}, {Cause::Dispatch, 50}}},
    // BoxedIndex surcharge: tagged elements + hole checks.
    {{{Cause::IcMiss, 400}, {Cause::BoundsCheck, 300}, {Cause::Useful, 200}, {Cause::Dispatch, 100}}},
    // Misc
    {{{Cause::Dispatch, 1000}}},
}};

CauseVec split(const ClassSplit& s, uint64_t cost_ps) {
  CauseVec out{};
  uint64_t assigned = 0;
  for (size_t i = 1; i < s.size(); ++i) {
    if (s[i].permille == 0) continue;
    const uint64_t part = cost_ps * s[i].permille / 1000;
    out[static_cast<size_t>(s[i].cause)] += part;
    assigned += part;
  }
  // Primary cause takes its own floor share plus the rounding remainder.
  out[static_cast<size_t>(s[0].cause)] += cost_ps - assigned;
  return out;
}

template <size_t N>
CauseVec decompose(const VmAttr<N>& a,
                   const std::array<std::array<uint64_t, N>, 2>& tables,
                   const std::array<ClassSplit, N>& splits) {
  CauseVec out{};
  for (size_t tier = 0; tier < 2; ++tier) {
    for (size_t cls = 0; cls < N; ++cls) {
      const uint64_t n = a.class_counts[tier][cls];
      if (n == 0) continue;
      const CauseVec shares = split(splits[cls], tables[tier][cls]);
      for (size_t i = 0; i < kCauseCount; ++i) out[i] += n * shares[i];
    }
  }
  for (size_t i = 0; i < kCauseCount; ++i) out[i] += a.direct_ps[i];
  return out;
}

}  // namespace

void set_enabled(bool on) { g_enabled = on; }
bool enabled() { return g_enabled; }

CauseVec split_wasm_class(wasm::OpClass cls, uint64_t cost_ps) {
  return split(kWasmSplits[static_cast<size_t>(cls)], cost_ps);
}

CauseVec split_js_class(js::JsOpClass cls, uint64_t cost_ps) {
  return split(kJsSplits[static_cast<size_t>(cls)], cost_ps);
}

CauseVec decompose_wasm(const wasm::AttrStats& a,
                        const std::array<wasm::CostTable, 2>& tables) {
  return decompose(a, tables, kWasmSplits);
}

CauseVec decompose_js(const js::JsAttrStats& a,
                      const std::array<js::JsCostTable, 2>& tables) {
  return decompose(a, tables, kJsSplits);
}

}  // namespace wb::attr
