// The x86-stand-in target: IR is "compiled" by running the backend-late
// passes (its dead-global-store elimination is NOT bug-gated — stock LLVM
// x86 codegen behaves correctly under fast-math, which is why the paper's
// Fig. 6 shows the expected -O ordering) and executed by the IR evaluator
// under the native cost model. Code size is estimated from lowered
// pseudo-instruction counts.
#pragma once

#include <cstddef>
#include <string>

#include "ir/ir.h"

namespace wb::backend {

struct NativeArtifact {
  ir::Module module;
  size_t code_size = 0;  ///< estimated machine-code bytes
};

/// Applies native-late passes and estimates code size.
NativeArtifact compile_to_native(ir::Module module);

}  // namespace wb::backend
