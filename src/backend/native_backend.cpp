#include "backend/native_backend.h"

#include "ir/passes.h"

namespace wb::backend {

namespace {

size_t expr_instrs(const ir::Expr& e) {
  size_t n = 1;
  for (const auto& a : e.args) n += expr_instrs(*a);
  return n;
}

size_t body_instrs(const std::vector<ir::StmtPtr>& body) {
  size_t n = 0;
  for (const auto& s : body) {
    n += 1;  // the statement itself (store/branch/assign)
    if (s->e0) n += expr_instrs(*s->e0);
    if (s->e1) n += expr_instrs(*s->e1);
    n += body_instrs(s->body);
    n += body_instrs(s->else_body);
  }
  return n;
}

}  // namespace

NativeArtifact compile_to_native(ir::Module module) {
  // Native codegen always eliminates dead global stores (no fast-math bug
  // on this path).
  ir::pass_dead_global_stores(module);
  ir::pass_remove_unused_globals(module);

  NativeArtifact artifact;
  size_t instrs = 0;
  for (const auto& fn : module.functions) {
    instrs += 8;  // prologue/epilogue
    instrs += body_instrs(fn.body);
  }
  artifact.code_size = instrs * 4;  // ~4 bytes per lowered instruction
  artifact.module = std::move(module);
  return artifact;
}

}  // namespace wb::backend
