#include "backend/wasm_backend.h"

#include <cmath>
#include <unordered_map>

#include "ir/passes.h"
#include "wasm/codec.h"
#include "wasm/validator.h"

namespace wb::backend {

namespace {

using ir::BinOp;
using ir::CastOp;
using ir::Intrinsic;
using ir::MemTy;
using ir::Ty;
using wasm::Instr;
using wasm::Opcode;
using wasm::ValType;

ValType to_valtype(Ty t) {
  switch (t) {
    case Ty::I32: return ValType::I32;
    case Ty::I64: return ValType::I64;
    case Ty::F32: return ValType::F32;
    case Ty::F64: return ValType::F64;
    case Ty::Void: break;
  }
  return ValType::I32;
}

Opcode bin_opcode(BinOp op, Ty operand_ty) {
  const bool f32 = operand_ty == Ty::F32;
  const bool f64 = operand_ty == Ty::F64;
  const bool i64 = operand_ty == Ty::I64;
  switch (op) {
    case BinOp::Add:
      return f64 ? Opcode::F64Add : f32 ? Opcode::F32Add : i64 ? Opcode::I64Add : Opcode::I32Add;
    case BinOp::Sub:
      return f64 ? Opcode::F64Sub : f32 ? Opcode::F32Sub : i64 ? Opcode::I64Sub : Opcode::I32Sub;
    case BinOp::Mul:
      return f64 ? Opcode::F64Mul : f32 ? Opcode::F32Mul : i64 ? Opcode::I64Mul : Opcode::I32Mul;
    case BinOp::DivS:
      return f64 ? Opcode::F64Div : f32 ? Opcode::F32Div : i64 ? Opcode::I64DivS : Opcode::I32DivS;
    case BinOp::DivU:
      return i64 ? Opcode::I64DivU : Opcode::I32DivU;
    case BinOp::RemS:
      return i64 ? Opcode::I64RemS : Opcode::I32RemS;
    case BinOp::RemU:
      return i64 ? Opcode::I64RemU : Opcode::I32RemU;
    case BinOp::And:
      return i64 ? Opcode::I64And : Opcode::I32And;
    case BinOp::Or:
      return i64 ? Opcode::I64Or : Opcode::I32Or;
    case BinOp::Xor:
      return i64 ? Opcode::I64Xor : Opcode::I32Xor;
    case BinOp::Shl:
      return i64 ? Opcode::I64Shl : Opcode::I32Shl;
    case BinOp::ShrS:
      return i64 ? Opcode::I64ShrS : Opcode::I32ShrS;
    case BinOp::ShrU:
      return i64 ? Opcode::I64ShrU : Opcode::I32ShrU;
    case BinOp::Eq:
      return f64 ? Opcode::F64Eq : f32 ? Opcode::F32Eq : i64 ? Opcode::I64Eq : Opcode::I32Eq;
    case BinOp::Ne:
      return f64 ? Opcode::F64Ne : f32 ? Opcode::F32Ne : i64 ? Opcode::I64Ne : Opcode::I32Ne;
    case BinOp::LtS:
      return f64 ? Opcode::F64Lt : f32 ? Opcode::F32Lt : i64 ? Opcode::I64LtS : Opcode::I32LtS;
    case BinOp::LtU:
      return i64 ? Opcode::I64LtU : Opcode::I32LtU;
    case BinOp::LeS:
      return f64 ? Opcode::F64Le : f32 ? Opcode::F32Le : i64 ? Opcode::I64LeS : Opcode::I32LeS;
    case BinOp::LeU:
      return i64 ? Opcode::I64LeU : Opcode::I32LeU;
    case BinOp::GtS:
      return f64 ? Opcode::F64Gt : f32 ? Opcode::F32Gt : i64 ? Opcode::I64GtS : Opcode::I32GtS;
    case BinOp::GtU:
      return i64 ? Opcode::I64GtU : Opcode::I32GtU;
    case BinOp::GeS:
      return f64 ? Opcode::F64Ge : f32 ? Opcode::F32Ge : i64 ? Opcode::I64GeS : Opcode::I32GeS;
    case BinOp::GeU:
      return i64 ? Opcode::I64GeU : Opcode::I32GeU;
  }
  return Opcode::Nop;
}

Opcode cast_opcode(CastOp op) {
  switch (op) {
    case CastOp::I32ToI64S: return Opcode::I64ExtendI32S;
    case CastOp::I32ToI64U: return Opcode::I64ExtendI32U;
    case CastOp::I64ToI32: return Opcode::I32WrapI64;
    case CastOp::I32ToF64S: return Opcode::F64ConvertI32S;
    case CastOp::I32ToF64U: return Opcode::F64ConvertI32U;
    case CastOp::I64ToF64S: return Opcode::F64ConvertI64S;
    case CastOp::I64ToF64U: return Opcode::F64ConvertI64U;
    case CastOp::F64ToI32S: return Opcode::I32TruncF64S;
    case CastOp::F64ToI64S: return Opcode::I64TruncF64S;
    case CastOp::F32ToF64: return Opcode::F64PromoteF32;
    case CastOp::F64ToF32: return Opcode::F32DemoteF64;
    case CastOp::I32ToF32S: return Opcode::F32ConvertI32S;
    case CastOp::F32ToI32S: return Opcode::I32TruncF32S;
  }
  return Opcode::Nop;
}

Opcode load_opcode(MemTy m) {
  switch (m) {
    case MemTy::U8: return Opcode::I32Load8U;
    case MemTy::I32: return Opcode::I32Load;
    case MemTy::I64: return Opcode::I64Load;
    case MemTy::F32: return Opcode::F32Load;
    case MemTy::F64: return Opcode::F64Load;
  }
  return Opcode::I32Load;
}

Opcode store_opcode(MemTy m) {
  switch (m) {
    case MemTy::U8: return Opcode::I32Store8;
    case MemTy::I32: return Opcode::I32Store;
    case MemTy::I64: return Opcode::I64Store;
    case MemTy::F32: return Opcode::F32Store;
    case MemTy::F64: return Opcode::F64Store;
  }
  return Opcode::I32Store;
}

uint32_t align_log2(MemTy m) {
  switch (m) {
    case MemTy::U8: return 0;
    case MemTy::I32: return 2;
    case MemTy::I64: return 3;
    case MemTy::F32: return 2;
    case MemTy::F64: return 3;
  }
  return 0;
}

constexpr uint32_t kPage = 65536;

class WasmGen {
 public:
  WasmGen(ir::Module module, const WasmOptions& options)
      : ir_(std::move(module)), options_(options) {}

  WasmArtifact run() {
    WasmArtifact artifact;

    // Backend-late passes. The Cheerp-style backend shares its mid-end
    // with the JS target; its DGSE is skipped under fast-math — the bug
    // the paper diagnoses in Fig. 7.
    if (!options_.fast_math) {
      ir::pass_dead_global_stores(ir_);
    }
    ir::pass_remove_unused_globals(ir_);

    // Layout: static data first.
    static_end_ = ir::layout_static_globals(ir_, 64);

    collect_imports();

    // wasm function index = imports + ir index (so call targets map 1:1).
    const uint32_t num_imports = static_cast<uint32_t>(import_intrinsics_.size());
    for (size_t i = 0; i < import_intrinsics_.size(); ++i) {
      wasm_.imports.push_back(wasm::Import{
          "env", ir::to_string(import_intrinsics_[i]),
          wasm_.intern_type(import_type(import_intrinsics_[i]))});
    }

    // Heap-top global + one address global per dynamic array.
    heap_top_global_ = add_global(ValType::I32, 0);
    for (uint32_t g = 0; g < ir_.globals.size(); ++g) {
      if (ir_.globals[g].dynamic_alloc) {
        dyn_addr_global_[g] = add_global(ValType::I32, 0);
      }
    }

    // Memory sizing per toolchain personality.
    const uint32_t static_pages = (static_end_ + kPage - 1) / kPage;
    if (options_.toolchain == Toolchain::Cheerp) {
      grow_quantum_pages_ = 1;  // 64 KiB
      initial_pages_ = std::max<uint32_t>(static_pages, 1);
    } else {
      grow_quantum_pages_ = 256;  // 16 MiB
      initial_pages_ = std::max<uint32_t>(static_pages, 256);
    }
    wasm_.memory = wasm::MemoryDecl{initial_pages_, std::nullopt};

    // Data segments for initialized static globals.
    for (const auto& g : ir_.globals) {
      if (g.dynamic_alloc || g.init.empty()) continue;
      std::vector<uint8_t> bytes(g.byte_size(), 0);
      const size_t esz = ir::mem_size(g.elem);
      for (size_t i = 0; i < g.init.size() && i < g.count; ++i) {
        std::memcpy(bytes.data() + i * esz, &g.init[i], esz);
      }
      wasm_.data.push_back(wasm::DataSegment{g.address, std::move(bytes)});
    }

    // Function declarations.
    for (const auto& fn : ir_.functions) {
      wasm::FuncType type;
      for (Ty p : fn.params) type.params.push_back(to_valtype(p));
      if (fn.ret != Ty::Void) type.results.push_back(to_valtype(fn.ret));
      wasm::Function wf;
      wf.type_index = wasm_.intern_type(type);
      wf.debug_name = fn.name;
      for (size_t r = fn.params.size(); r < fn.reg_types.size(); ++r) {
        wf.locals.push_back(to_valtype(fn.reg_types[r]));
      }
      wasm_.functions.push_back(std::move(wf));
    }

    // Bodies.
    for (size_t i = 0; i < ir_.functions.size(); ++i) {
      current_body_ = &wasm_.functions[i].body;
      current_fn_ = &wasm_.functions[i];
      current_nparams_ = static_cast<uint32_t>(ir_.functions[i].params.size());
      scratch_.fill(-1);
      ctrl_.clear();
      const auto& body = ir_.functions[i].body;
      lower_body(body);
      // A non-void function whose body does not *end* with a return (e.g.
      // every path returns inside an if/else) needs an unreachable tail to
      // satisfy validation.
      if (ir_.functions[i].ret != Ty::Void &&
          (body.empty() || body.back()->kind != ir::Stmt::Kind::Return)) {
        emit(Opcode::Unreachable);
      }
      emit(Opcode::End);
      if (!error_.empty()) break;
    }

    // __init: bump-allocate dynamic arrays, growing memory in
    // toolchain-quantum steps.
    build_init_function();

    // Exports.
    for (size_t i = 0; i < ir_.functions.size(); ++i) {
      wasm_.exports.push_back(wasm::Export{ir_.functions[i].name,
                                           wasm::ExportKind::Func,
                                           num_imports + static_cast<uint32_t>(i)});
    }
    wasm_.exports.push_back(wasm::Export{
        "__init", wasm::ExportKind::Func,
        num_imports + static_cast<uint32_t>(wasm_.functions.size() - 1)});
    wasm_.exports.push_back(wasm::Export{"memory", wasm::ExportKind::Memory, 0});

    if (!error_.empty()) {
      artifact.error = error_;
      return artifact;
    }
    if (const auto err = wasm::validate(wasm_)) {
      artifact.error = "internal: generated module does not validate: " + err->message +
                       " (func " + std::to_string(err->func_index) + ")";
      return artifact;
    }
    artifact.binary = wasm::encode(wasm_);
    artifact.module = std::move(wasm_);
    artifact.static_data_end = static_end_;
    artifact.initial_pages = initial_pages_;
    artifact.imports = import_intrinsics_;
    return artifact;
  }

 private:
  void fail(std::string message) {
    if (error_.empty()) error_ = std::move(message);
  }

  /// Scratch local per type for scalarized-vector data movement.
  uint32_t scratch_local(Ty ty) {
    const size_t slot = static_cast<size_t>(to_valtype(ty)) & 3;
    if (scratch_[slot] < 0) {
      current_fn_->locals.push_back(to_valtype(ty));
      scratch_[slot] = static_cast<int>(current_nparams_ + current_fn_->locals.size() - 1);
    }
    return static_cast<uint32_t>(scratch_[slot]);
  }

  uint32_t add_global(ValType type, int32_t init) {
    wasm_.globals.push_back(wasm::Global{type, true, wasm::Value::from_i32(init)});
    return static_cast<uint32_t>(wasm_.globals.size() - 1);
  }

  static wasm::FuncType import_type(Intrinsic i) {
    wasm::FuncType t;
    t.params.assign(i == Intrinsic::Pow ? 2 : 1, ValType::F64);
    t.results = {ValType::F64};
    return t;
  }

  void collect_imports() {
    std::array<bool, static_cast<size_t>(Intrinsic::kCount)> used{};
    const auto scan_expr = [&](const ir::Expr& e, const auto& self) -> void {
      if (e.kind == ir::Expr::Kind::IntrinsicCall && !ir::intrinsic_is_native(e.intrinsic)) {
        used[static_cast<size_t>(e.intrinsic)] = true;
      }
      for (const auto& a : e.args) self(*a, self);
    };
    const auto scan_body = [&](const std::vector<ir::StmtPtr>& body, const auto& self) -> void {
      for (const auto& s : body) {
        if (s->e0) scan_expr(*s->e0, scan_expr);
        if (s->e1) scan_expr(*s->e1, scan_expr);
        self(s->body, self);
        self(s->else_body, self);
      }
    };
    for (const auto& fn : ir_.functions) scan_body(fn.body, scan_body);
    for (size_t i = 0; i < used.size(); ++i) {
      if (used[i]) import_intrinsics_.push_back(static_cast<Intrinsic>(i));
    }
  }

  // -------------------------------------------------------------- emit
  void emit(Opcode op, uint32_t a = 0, uint32_t b = 0) {
    current_body_->push_back(Instr::make(op, a, b));
  }
  void emit_i32(int32_t v) { current_body_->push_back(Instr::i32_const(v)); }
  void emit_i64(int64_t v) { current_body_->push_back(Instr::i64_const(v)); }
  void emit_f32(float v) { current_body_->push_back(Instr::f32_const(v)); }
  void emit_f64(double v) { current_body_->push_back(Instr::f64_const(v)); }

  uint32_t func_index(uint32_t ir_index) const {
    return static_cast<uint32_t>(import_intrinsics_.size()) + ir_index;
  }

  // Control-stack bookkeeping for break/continue depth computation.
  struct LoopCtl {
    uint32_t depth_at_loop;  // ctrl depth of the loop's `loop` frame
    uint32_t depth_at_exit;  // ctrl depth of the surrounding exit block
  };

  void lower_body(const std::vector<ir::StmtPtr>& body) {
    for (const auto& s : body) {
      lower_stmt(*s);
      if (!error_.empty()) return;
    }
  }

  void lower_stmt(const ir::Stmt& s) {
    switch (s.kind) {
      case ir::Stmt::Kind::Assign:
        lower_expr(*s.e0);
        emit(Opcode::LocalSet, s.reg);
        break;
      case ir::Stmt::Kind::Store:
        lower_expr(*s.e0);
        lower_expr(*s.e1);
        emit(store_opcode(s.mem), align_log2(s.mem), s.mem_offset);
        break;
      case ir::Stmt::Kind::ExprStmt:
        lower_expr(*s.e0);
        if (s.e0->ty != Ty::Void) emit(Opcode::Drop);
        break;
      case ir::Stmt::Kind::If:
        lower_expr(*s.e0);
        emit(Opcode::If, wasm::kVoidBlockType);
        ++depth_;
        lower_body(s.body);
        if (!s.else_body.empty()) {
          emit(Opcode::Else);
          lower_body(s.else_body);
        }
        emit(Opcode::End);
        --depth_;
        break;
      case ir::Stmt::Kind::While: {
        // block $exit { loop $top { cond eqz br_if $exit; body; br $top } }
        emit(Opcode::Block, wasm::kVoidBlockType);
        ++depth_;
        const uint32_t exit_depth = depth_;
        emit(Opcode::Loop, wasm::kVoidBlockType);
        ++depth_;
        ctrl_.push_back(LoopCtl{depth_, exit_depth});
        lower_expr(*s.e0);
        emit(Opcode::I32Eqz);
        emit(Opcode::BrIf, depth_ - exit_depth);  // = 1
        lower_body(s.body);
        emit(Opcode::Br, 0);
        ctrl_.pop_back();
        emit(Opcode::End);
        --depth_;
        emit(Opcode::End);
        --depth_;
        break;
      }
      case ir::Stmt::Kind::DoWhile: {
        // block $exit { loop $top { block $cont { body } cond br_if $top } }
        emit(Opcode::Block, wasm::kVoidBlockType);
        ++depth_;
        const uint32_t exit_depth = depth_;
        emit(Opcode::Loop, wasm::kVoidBlockType);
        ++depth_;
        const uint32_t top_depth = depth_;
        emit(Opcode::Block, wasm::kVoidBlockType);
        ++depth_;
        // continue in a do-while jumps to the condition check: the end of
        // the inner block.
        ctrl_.push_back(LoopCtl{depth_, exit_depth});
        lower_body(s.body);
        ctrl_.pop_back();
        emit(Opcode::End);
        --depth_;
        lower_expr(*s.e0);
        emit(Opcode::BrIf, depth_ - top_depth);  // back edge
        emit(Opcode::End);
        --depth_;
        emit(Opcode::End);
        --depth_;
        break;
      }
      case ir::Stmt::Kind::Break:
        if (ctrl_.empty()) {
          fail("break outside loop in IR");
          return;
        }
        emit(Opcode::Br, depth_ - ctrl_.back().depth_at_exit);
        break;
      case ir::Stmt::Kind::Continue:
        if (ctrl_.empty()) {
          fail("continue outside loop in IR");
          return;
        }
        emit(Opcode::Br, depth_ - ctrl_.back().depth_at_loop);
        break;
      case ir::Stmt::Kind::Return:
        if (s.e0) lower_expr(*s.e0);
        emit(Opcode::Return);
        break;
    }
  }

  void lower_expr(const ir::Expr& e) {
    switch (e.kind) {
      case ir::Expr::Kind::Const:
        emit_const(e);
        break;
      case ir::Expr::Kind::Reg:
        emit(Opcode::LocalGet, e.reg);
        break;
      case ir::Expr::Kind::GlobalAddr: {
        const ir::GlobalVar& g = ir_.globals[e.reg];
        if (g.dynamic_alloc) {
          emit(Opcode::GlobalGet, dyn_addr_global_.at(e.reg));
        } else {
          emit_i32(static_cast<int32_t>(g.address));
        }
        break;
      }
      case ir::Expr::Kind::Bin:
        lower_expr(*e.args[0]);
        lower_expr(*e.args[1]);
        emit(bin_opcode(e.bin, e.args[0]->ty));
        if (e.vec > 1 && options_.scalarize_vector_ops) {
          // The mid-end vectorized this op, but Wasm MVP has no SIMD: the
          // backend scalarizes, and each lane pays extract/insert-element
          // traffic (spilled through a scratch local). This is the paper's
          // "-vectorize-loops hurts Wasm" mechanism.
          const uint32_t scratch = scratch_local(e.ty);
          emit(Opcode::LocalSet, scratch);
          emit(Opcode::LocalGet, scratch);
        }
        break;
      case ir::Expr::Kind::Un:
        switch (e.un) {
          case ir::UnOp::Neg:
            if (e.ty == Ty::F64) {
              lower_expr(*e.args[0]);
              emit(Opcode::F64Neg);
            } else if (e.ty == Ty::F32) {
              lower_expr(*e.args[0]);
              emit(Opcode::F32Neg);
            } else if (e.ty == Ty::I64) {
              emit_i64(0);
              lower_expr(*e.args[0]);
              emit(Opcode::I64Sub);
            } else {
              emit_i32(0);
              lower_expr(*e.args[0]);
              emit(Opcode::I32Sub);
            }
            break;
          case ir::UnOp::BitNot:
            lower_expr(*e.args[0]);
            if (e.ty == Ty::I64) {
              emit_i64(-1);
              emit(Opcode::I64Xor);
            } else {
              emit_i32(-1);
              emit(Opcode::I32Xor);
            }
            break;
          case ir::UnOp::LNot:
            lower_expr(*e.args[0]);
            emit(e.args[0]->ty == Ty::I64 ? Opcode::I64Eqz : Opcode::I32Eqz);
            break;
        }
        break;
      case ir::Expr::Kind::Cast:
        lower_expr(*e.args[0]);
        emit(cast_opcode(e.cast));
        break;
      case ir::Expr::Kind::Load:
        lower_expr(*e.args[0]);
        emit(load_opcode(e.mem), align_log2(e.mem), e.mem_offset);
        break;
      case ir::Expr::Kind::Call:
        for (const auto& a : e.args) lower_expr(*a);
        emit(Opcode::Call, func_index(e.func));
        break;
      case ir::Expr::Kind::IntrinsicCall:
        for (const auto& a : e.args) lower_expr(*a);
        if (ir::intrinsic_is_native(e.intrinsic)) {
          switch (e.intrinsic) {
            case Intrinsic::Sqrt: emit(Opcode::F64Sqrt); break;
            case Intrinsic::Fabs: emit(Opcode::F64Abs); break;
            case Intrinsic::Floor: emit(Opcode::F64Floor); break;
            case Intrinsic::Ceil: emit(Opcode::F64Ceil); break;
            default: fail("bad native intrinsic"); break;
          }
        } else {
          // Imported host function (the libm shim).
          for (size_t i = 0; i < import_intrinsics_.size(); ++i) {
            if (import_intrinsics_[i] == e.intrinsic) {
              emit(Opcode::Call, static_cast<uint32_t>(i));
              return;
            }
          }
          fail("intrinsic import not collected");
        }
        break;
    }
  }

  void emit_const(const ir::Expr& e) {
    switch (e.ty) {
      case Ty::I32:
        emit_i32(static_cast<int32_t>(e.imm));
        break;
      case Ty::I64:
        emit_i64(static_cast<int64_t>(e.imm));
        break;
      case Ty::F32: {
        float f;
        uint32_t bits = static_cast<uint32_t>(e.imm);
        std::memcpy(&f, &bits, sizeof f);
        emit_f32(f);
        break;
      }
      case Ty::F64: {
        double d;
        std::memcpy(&d, &e.imm, sizeof d);
        // Cheerp's size trick: small integral f64 constants become
        // i32.const + f64.convert_i32_s (3 bytes vs 9). Two stack ops at
        // runtime instead of one — the paper's Fig. 8 effect.
        const bool integral = d == std::trunc(d) && std::abs(d) <= 2147483647.0;
        const bool negative_zero = d == 0.0 && std::signbit(d);
        if (options_.const_convert_trick && integral && !negative_zero) {
          emit_i32(static_cast<int32_t>(d));
          emit(Opcode::F64ConvertI32S);
          break;
        }
        emit_f64(d);
        break;
      }
      case Ty::Void:
        fail("void constant");
        break;
    }
  }

  void build_init_function() {
    wasm::FuncType void_type;
    wasm::Function init;
    init.type_index = wasm_.intern_type(void_type);
    init.debug_name = "__init";
    init.locals.push_back(ValType::I32);  // local 0: bump cursor
    wasm_.functions.push_back(std::move(init));
    current_body_ = &wasm_.functions.back().body;
    depth_ = 0;
    ctrl_.clear();

    // heap_top = align8(static_end)
    emit_i32(static_cast<int32_t>((static_end_ + 7) & ~7u));
    emit(Opcode::GlobalSet, heap_top_global_);

    for (uint32_t g = 0; g < ir_.globals.size(); ++g) {
      const ir::GlobalVar& gv = ir_.globals[g];
      if (!gv.dynamic_alloc) continue;
      // addr = heap_top; g_addr = addr; heap_top += size (8-aligned).
      emit(Opcode::GlobalGet, heap_top_global_);
      emit(Opcode::GlobalSet, dyn_addr_global_.at(g));
      emit(Opcode::GlobalGet, heap_top_global_);
      emit_i32(static_cast<int32_t>((gv.byte_size() + 7) & ~size_t{7}));
      emit(Opcode::I32Add);
      emit(Opcode::GlobalSet, heap_top_global_);
      // Grow until memory.size * 64K >= heap_top.
      emit(Opcode::Block, wasm::kVoidBlockType);
      emit(Opcode::Loop, wasm::kVoidBlockType);
      emit(Opcode::MemorySize);
      emit_i32(16);
      emit(Opcode::I32Shl);  // pages -> bytes
      emit(Opcode::GlobalGet, heap_top_global_);
      emit(Opcode::I32GeU);
      emit(Opcode::BrIf, 1);  // done
      emit_i32(static_cast<int32_t>(grow_quantum_pages_));
      emit(Opcode::MemoryGrow);
      emit_i32(-1);
      emit(Opcode::I32Eq);
      emit(Opcode::If, wasm::kVoidBlockType);
      emit(Opcode::Unreachable);  // OOM
      emit(Opcode::End);
      emit(Opcode::Br, 0);
      emit(Opcode::End);
      emit(Opcode::End);
    }
    emit(Opcode::End);
  }

  ir::Module ir_;
  WasmOptions options_;
  wasm::Module wasm_;
  std::string error_;
  std::vector<Intrinsic> import_intrinsics_;
  std::unordered_map<uint32_t, uint32_t> dyn_addr_global_;
  uint32_t heap_top_global_ = 0;
  uint32_t static_end_ = 0;
  uint32_t initial_pages_ = 0;
  uint32_t grow_quantum_pages_ = 1;
  std::vector<Instr>* current_body_ = nullptr;
  wasm::Function* current_fn_ = nullptr;
  uint32_t current_nparams_ = 0;
  std::array<int, 4> scratch_ = {-1, -1, -1, -1};
  uint32_t depth_ = 0;
  std::vector<LoopCtl> ctrl_;
};

}  // namespace

const char* to_string(Toolchain t) {
  return t == Toolchain::Cheerp ? "cheerp" : "emscripten";
}

WasmArtifact compile_to_wasm(ir::Module module, const WasmOptions& options) {
  WasmGen gen(std::move(module), options);
  return gen.run();
}

std::vector<wasm::HostFn> make_import_bindings(const WasmArtifact& artifact,
                                               uint64_t* call_counter) {
  std::vector<wasm::HostFn> fns;
  for (Intrinsic i : artifact.imports) {
    fns.push_back([i, call_counter](std::span<const wasm::Value> args,
                                    wasm::Value* result) {
      if (call_counter) ++*call_counter;
      const double x = args.empty() ? 0 : args[0].as_f64();
      double r = 0;
      switch (i) {
        case Intrinsic::Pow: r = std::pow(x, args[1].as_f64()); break;
        case Intrinsic::Exp: r = std::exp(x); break;
        case Intrinsic::Log: r = std::log(x); break;
        case Intrinsic::Sin: r = std::sin(x); break;
        case Intrinsic::Cos: r = std::cos(x); break;
        default: return wasm::Trap::HostError;
      }
      *result = wasm::Value::from_f64(r);
      return wasm::Trap::None;
    });
  }
  return fns;
}

}  // namespace wb::backend
