// IR -> WebAssembly code generator, with two toolchain personalities:
//
//  - Cheerp: 64 KiB memory-growth quantum (one Wasm page), tight initial
//    memory -> low footprint, many memory.grow calls for large inputs.
//  - Emscripten: 16 MiB quantum and a 16 MiB floor -> fast, memory-hungry.
//    (This is the mechanism behind the paper's Sec. 4.2.2: Emscripten
//    2.70x faster, 6.02x more memory.)
//
// Two deliberate behaviour replications from the paper:
//  - f64 constants with small integral values are emitted as
//    `i32.const n; f64.convert_i32_s` (Cheerp's size trick) — the Fig. 8
//    mechanism that makes -O2's constant propagation slower than -O1's
//    parameter passing on the Wasm stack machine.
//  - Under fast-math (-Ofast), dead-global-store elimination is skipped,
//    replicating the LLVM bug behind Fig. 7 (ADPCM stores to a never-read
//    global). The native backend does not have this bug.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/ir.h"
#include "wasm/interp.h"

namespace wb::backend {

enum class Toolchain : uint8_t { Cheerp, Emscripten };
const char* to_string(Toolchain t);

struct WasmOptions {
  Toolchain toolchain = Toolchain::Cheerp;
  /// Produced by the -Ofast pipeline; triggers the DGSE-skip bug.
  bool fast_math = false;
  /// Ablation switches (default = faithful Cheerp behaviour; see
  /// bench_ablations for what each mechanism contributes).
  bool const_convert_trick = true;   ///< Fig. 8: i32.const+convert f64 consts
  bool scalarize_vector_ops = true;  ///< Fig. 5/7: SIMD ops spill when scalarized
};

struct WasmArtifact {
  wasm::Module module;
  std::vector<uint8_t> binary;  ///< real encoded bytes; the code-size metric
  uint32_t static_data_end = 0;
  uint32_t initial_pages = 0;
  /// Index-space indices of the import slots, in host-function order
  /// (pow, exp, log, sin, cos — only the used ones are imported).
  std::vector<ir::Intrinsic> imports;
  std::string error;  ///< non-empty on failure

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Lowers `module` (consumed; backend-late passes run on it) to Wasm.
/// The artifact exports "main" (and every IR function by name), "__init"
/// (the startup bump allocator for dynamic arrays), and "memory".
WasmArtifact compile_to_wasm(ir::Module module, const WasmOptions& options);

/// Host bindings for the artifact's libm imports, in import order.
/// `call_counter`, if non-null, is incremented per host call (the
/// JS<->Wasm boundary-crossing count the environment charges for).
std::vector<wasm::HostFn> make_import_bindings(const WasmArtifact& artifact,
                                               uint64_t* call_counter = nullptr);

}  // namespace wb::backend
