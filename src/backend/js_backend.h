// IR -> "compiler-generated JavaScript", in the style Cheerp emits for its
// genericjs/asm.js-like target: each C array becomes a typed array, all
// integer arithmetic carries |0 coercions, i32 multiplication uses
// Math.imul, and unsigned ops use the >>>0 idiom. The output is real
// source text for the in-repo JS engine, so parse cost and code size are
// measured on actual bytes.
#pragma once

#include <string>

#include "ir/ir.h"

namespace wb::backend {

struct JsOptions {
  /// Produced by the -Ofast pipeline; skips dead-global-store elimination
  /// (this backend shares Cheerp's buggy fast-math path, see Fig. 7).
  bool fast_math = false;
};

struct JsArtifact {
  std::string source;
  std::string error;  ///< non-empty on failure
  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Lowers `module` (consumed; backend-late passes run on it) to JS source.
/// The program defines one JS function per IR function (same names).
JsArtifact compile_to_js(ir::Module module, const JsOptions& options);

}  // namespace wb::backend
