#include "fleet/device.h"

#include <algorithm>
#include <cmath>

namespace wb::fleet {

std::vector<Device> build_fleet(size_t count, support::Rng rng,
                                const FleetMix& mix) {
  std::vector<Device> fleet;
  fleet.reserve(count);
  const std::span<const double> browser_w(mix.browser_weights, 3);
  const std::span<const double> platform_w(mix.platform_weights, 2);
  for (size_t i = 0; i < count; ++i) {
    Device d;
    d.browser = static_cast<env::Browser>(rng.weighted_index(browser_w));
    d.platform = static_cast<env::Platform>(rng.weighted_index(platform_w));
    const double cpu =
        std::min(rng.pareto(mix.cpu_pareto_shape, 1.0), mix.cpu_max);
    d.cpu_permille = static_cast<uint32_t>(std::llround(cpu * 1000.0));
    const uint64_t base = d.platform == env::Platform::Mobile
                              ? mix.mobile_base_ps_per_byte
                              : mix.desktop_base_ps_per_byte;
    const double net =
        std::min(rng.pareto(mix.net_pareto_shape, 1.0), mix.net_max);
    d.net_ps_per_byte =
        static_cast<uint32_t>(std::llround(static_cast<double>(base) * net));
    fleet.push_back(d);
  }
  return fleet;
}

}  // namespace wb::fleet
