#include "fleet/analytics.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "support/table.h"

namespace wb::fleet {

namespace json = support::json;

namespace {

int64_t rounded(double v) { return static_cast<int64_t>(std::llround(v)); }

/// Distribution summary as exact integers (the report is byte-gated).
json::Value dist_json(const support::StreamingQuantiles& q) {
  json::Object o;
  o.emplace_back("mean", rounded(q.mean()));
  o.emplace_back("min", rounded(q.min()));
  o.emplace_back("p50", rounded(q.quantile(0.50)));
  o.emplace_back("p95", rounded(q.quantile(0.95)));
  o.emplace_back("p99", rounded(q.quantile(0.99)));
  o.emplace_back("max", rounded(q.max()));
  return o;
}

void group_body(json::Object& o, uint64_t sessions, uint64_t warm,
                const support::StreamingQuantiles& latency,
                const support::StreamingQuantiles& memory,
                const support::StreamingQuantiles& startup_cold,
                const support::StreamingQuantiles& startup_warm) {
  o.emplace_back("sessions", static_cast<int64_t>(sessions));
  o.emplace_back("warm_sessions", static_cast<int64_t>(warm));
  o.emplace_back("cold_sessions", static_cast<int64_t>(sessions - warm));
  o.emplace_back("latency_ps", dist_json(latency));
  o.emplace_back("memory_bytes", dist_json(memory));
  o.emplace_back("startup_cold_ps", dist_json(startup_cold));
  o.emplace_back("startup_warm_ps", dist_json(startup_warm));
}

double ps_to_ms(double ps) { return ps / 1e9; }

}  // namespace

void FleetAnalytics::record(const SessionSample& s) {
  const auto update = [&](Group& g) {
    ++g.sessions;
    g.latency.add(static_cast<double>(s.latency_ps));
    g.memory.add(static_cast<double>(s.memory_bytes));
    if (s.warm) {
      ++g.warm;
      g.startup_warm.add(static_cast<double>(s.startup_ps));
    } else {
      g.startup_cold.add(static_cast<double>(s.startup_ps));
    }
  };
  update(cells_[static_cast<size_t>(s.browser)][static_cast<size_t>(s.platform)]);
  update(overall_);
}

json::Array FleetAnalytics::cells_json() const {
  struct Keyed {
    std::string key;
    json::Object body;
  };
  std::vector<Keyed> keyed;
  for (size_t b = 0; b < 3; ++b) {
    for (size_t p = 0; p < 2; ++p) {
      const Group& g = cells_[b][p];
      if (g.sessions == 0) continue;
      const char* browser = env::to_string(static_cast<env::Browser>(b));
      const char* platform = env::to_string(static_cast<env::Platform>(p));
      Keyed k;
      k.key = std::string(browser) + '|' + platform;
      k.body.emplace_back("browser", browser);
      k.body.emplace_back("platform", platform);
      group_body(k.body, g.sessions, g.warm, g.latency, g.memory, g.startup_cold,
                 g.startup_warm);
      keyed.push_back(std::move(k));
    }
  }
  std::sort(keyed.begin(), keyed.end(),
            [](const Keyed& a, const Keyed& b) { return a.key < b.key; });
  json::Array out;
  out.reserve(keyed.size());
  for (Keyed& k : keyed) out.emplace_back(std::move(k.body));
  return out;
}

json::Value FleetAnalytics::overall_json() const {
  json::Object o;
  group_body(o, overall_.sessions, overall_.warm, overall_.latency, overall_.memory,
             overall_.startup_cold, overall_.startup_warm);
  return o;
}

std::string FleetAnalytics::table() const {
  support::TextTable t("Session latency / memory by (browser, platform)");
  t.set_header({"Browser", "Platform", "Sessions", "Warm%", "p50 ms", "p95 ms",
                "p99 ms", "Mem p50 KB", "Mem p99 KB"});
  const auto row = [&](const char* browser, const char* platform, const Group& g) {
    const double warm_pct =
        g.sessions ? 100.0 * static_cast<double>(g.warm) / static_cast<double>(g.sessions)
                   : 0.0;
    t.add_row({browser, platform, std::to_string(g.sessions),
               support::fmt(warm_pct, 1), support::fmt(ps_to_ms(g.latency.quantile(0.5)), 2),
               support::fmt(ps_to_ms(g.latency.quantile(0.95)), 2),
               support::fmt(ps_to_ms(g.latency.quantile(0.99)), 2),
               support::fmt(g.memory.quantile(0.5) / 1024.0, 0),
               support::fmt(g.memory.quantile(0.99) / 1024.0, 0)});
  };
  for (size_t b = 0; b < 3; ++b) {
    for (size_t p = 0; p < 2; ++p) {
      const Group& g = cells_[b][p];
      if (g.sessions == 0) continue;
      row(env::to_string(static_cast<env::Browser>(b)),
          env::to_string(static_cast<env::Platform>(p)), g);
    }
  }
  t.add_rule();
  row("All", "All", overall_);
  return t.render();
}

}  // namespace wb::fleet
