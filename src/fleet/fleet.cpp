#include "fleet/fleet.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "backend/wasm_backend.h"
#include "benchmarks/registry.h"
#include "fleet/analytics.h"
#include "snap/snap.h"
#include "fleet/cache.h"
#include "fleet/device.h"
#include "replay/corpus.h"
#include "replay/replay.h"
#include "support/sha256.h"
#include "support/table.h"
#include "support/thread_pool.h"

namespace wb::fleet {

namespace json = support::json;

namespace {

/// Sessions are drawn in fixed-size shards whose seeds derive serially
/// from the master Rng, so the shard layout — and therefore every drawn
/// byte — is independent of --jobs.
constexpr uint64_t kShardSessions = 4096;

int resolve_jobs(int jobs) {
  if (jobs > 0) return jobs;
  if (const char* env = std::getenv("WB_JOBS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return static_cast<int>(support::hardware_jobs());
}

int64_t rounded(double v) { return static_cast<int64_t>(std::llround(v)); }

/// One distinct workload: a corpus benchmark at one input size, or a
/// wb::replay recording (bench == nullptr) re-priced per device cell.
struct Workload {
  const core::BenchSource* bench = nullptr;
  core::InputSize size = core::InputSize::XS;
  const replay::Trace* trace = nullptr;
};

std::string workload_name(const Workload& w) {
  return w.trace ? "replay:" + w.trace->name : w.bench->name;
}

/// A workload measured once in one (browser, platform) environment,
/// decomposed so per-session startup can be re-modeled as cold or warm.
struct CellMetrics {
  uint64_t exec_ps = 0;       ///< measured cost minus modeled load phase
  uint64_t decode_ps = 0;     ///< decode + baseline compile of the binary
  uint64_t memory_bytes = 0;  ///< peak page memory
};

/// Everything measured about one workload across all six environments.
struct WorkloadMetrics {
  uint64_t code_size = 0;
  std::string sha256;
  std::string error;                ///< non-empty = build or run failed
  CellMetrics cells[3][2];          ///< [browser][platform]
  std::string cache_keys[3][2];     ///< content address x compile target
  /// Canonical `.wbsnap` size of the post-instantiate snapshot (the
  /// restore-cost input under --snapshot); 0 when snapshots are off or
  /// the workload is a replay module (those keep the classic warm path).
  uint64_t snapshot_bytes = 0;
};

/// One drawn session; resolved against cells/cache during serial replay.
struct SessionRecord {
  uint32_t device = 0;
  uint32_t workload = 0;
  uint32_t arrival_gap_us = 0;
};

/// Builds each workload once and measures it in all six browser
/// environments. Workloads are independent, so the pool fan-out cannot
/// change a measured bit.
std::vector<WorkloadMetrics> measure_workloads(const std::vector<Workload>& workloads,
                                               ir::OptLevel level, bool snapshot,
                                               int jobs) {
  std::vector<WorkloadMetrics> out(workloads.size());
  support::parallel_for(
      workloads.size(), static_cast<unsigned>(jobs), [&](size_t i) {
        const Workload& w = workloads[i];
        WorkloadMetrics& m = out[i];
        if (w.trace) {
          // Replay module: the program bytes and boundary responses come
          // from the recording; replay_in_env re-prices load/parse and
          // boundary charges from each cell's profile.
          const replay::Trace& t = *w.trace;
          m.code_size = t.program.size();
          m.sha256 = support::sha256_hex(t.program);
          for (size_t b = 0; b < 3; ++b) {
            for (size_t p = 0; p < 2; ++p) {
              const auto browser = static_cast<env::Browser>(b);
              const auto platform = static_cast<env::Platform>(p);
              const env::BrowserEnv browser_env(browser, platform);
              const replay::ReplayResult r = replay::replay_in_env(t, browser_env);
              if (!r.ok) {
                m.error = workload_name(w) + " @ " + env::to_string(browser) +
                          "/" + env::to_string(platform) + ": " + r.error;
                return;
              }
              const env::Profile& profile = browser_env.profile();
              CellMetrics& cell = m.cells[b][p];
              const bool is_wasm = t.kind == replay::ProgramKind::Wasm;
              cell.decode_ps = is_wasm
                                   ? profile.wasm_decode_cost_per_byte * m.code_size
                                   : profile.js_parse_cost_per_byte * m.code_size;
              const uint64_t modeled_load =
                  profile.page_overhead_ps + cell.decode_ps +
                  (is_wasm ? profile.wasm_instantiate_overhead_ps : 0);
              if (r.metrics.cost_ps < modeled_load) {
                m.error = workload_name(w) + ": cost below modeled load phase";
                return;
              }
              cell.exec_ps = r.metrics.cost_ps - modeled_load;
              cell.memory_bytes = r.metrics.memory_bytes;
              m.cache_keys[b][p] = m.sha256 + '|' + env::to_string(browser) +
                                   '|' + env::to_string(platform);
            }
          }
          return;
        }
        const core::BuildResult build = core::build(*w.bench, w.size, level);
        if (!build.ok) {
          m.error = w.bench->name + ": build failed: " + build.error;
          return;
        }
        m.code_size = build.wasm.binary.size();
        m.sha256 = support::sha256_hex(build.wasm.binary);
        if (snapshot) {
          // The post-instantiate snapshot is captured once per workload:
          // the warmed state (memory image, globals, tier counters) does
          // not depend on the device cell, so one canonical encoding
          // prices every fleet restore. Chrome/Desktop supplies the cost
          // tables, like the replay-corpus recording.
          const env::BrowserEnv chrome(env::Browser::Chrome,
                                       env::Platform::Desktop);
          uint64_t calls = 0;
          wasm::Instance warm(build.wasm.module,
                              backend::make_import_bindings(build.wasm, &calls));
          warm.set_cost_tables(chrome.wasm_tier_costs(false, {}),
                               chrome.wasm_tier_costs(true, {}));
          warm.set_fuel(4'000'000'000ull);
          wasm::TierPolicy tp;
          tp.tierup_threshold = chrome.profile().wasm_tierup_threshold;
          tp.tierup_cost_per_instr = 400;
          warm.set_tier_policy(tp);
          warm.set_grow_cost(chrome.profile().grow_cost_ps);
          if (warm.invoke("__init", {}).ok()) {
            m.snapshot_bytes = snap::snapshot_wasm(warm, w.bench->name).bytes;
          }
        }
        for (size_t b = 0; b < 3; ++b) {
          for (size_t p = 0; p < 2; ++p) {
            const auto browser = static_cast<env::Browser>(b);
            const auto platform = static_cast<env::Platform>(p);
            const env::BrowserEnv browser_env(browser, platform);
            const env::PageMetrics metrics = browser_env.run_wasm(build.wasm);
            if (!metrics.ok) {
              m.error = w.bench->name + " @ " + env::to_string(browser) + "/" +
                        env::to_string(platform) + ": " + metrics.error;
              return;
            }
            const env::Profile& profile = browser_env.profile();
            CellMetrics& cell = m.cells[b][p];
            cell.decode_ps = profile.wasm_decode_cost_per_byte * m.code_size;
            const uint64_t modeled_load = profile.page_overhead_ps +
                                          profile.wasm_instantiate_overhead_ps +
                                          cell.decode_ps;
            if (metrics.cost_ps < modeled_load) {
              m.error = w.bench->name + ": cost below modeled load phase";
              return;
            }
            cell.exec_ps = metrics.cost_ps - modeled_load;
            cell.memory_bytes = metrics.memory_bytes;
            m.cache_keys[b][p] = m.sha256 + '|' + env::to_string(browser) + '|' +
                                 env::to_string(platform);
          }
        }
      });
  return out;
}

/// Zipf-ish popularity over the workload list: a few modules dominate
/// fleet traffic (weight 1/rank), which is what makes a shared code cache
/// pay off.
std::vector<double> workload_weights(size_t n) {
  std::vector<double> w(n);
  for (size_t i = 0; i < n; ++i) w[i] = 1.0 / static_cast<double>(i + 1);
  return w;
}

std::vector<SessionRecord> draw_sessions(const FleetConfig& config,
                                         size_t workload_count, support::Rng& master,
                                         int jobs) {
  const uint64_t n = config.sessions;
  const uint64_t shards = (n + kShardSessions - 1) / kShardSessions;
  std::vector<support::Rng> shard_rngs;
  shard_rngs.reserve(shards);
  for (uint64_t s = 0; s < shards; ++s) shard_rngs.push_back(master.split());

  const std::vector<double> weights = workload_weights(workload_count);
  std::vector<SessionRecord> sessions(n);
  support::parallel_for(shards, static_cast<unsigned>(jobs), [&](size_t shard) {
    support::Rng rng = shard_rngs[shard];
    const uint64_t begin = shard * kShardSessions;
    const uint64_t end = std::min(n, begin + kShardSessions);
    for (uint64_t i = begin; i < end; ++i) {
      SessionRecord& s = sessions[i];
      s.device = static_cast<uint32_t>(rng.next_below(config.devices));
      s.workload = static_cast<uint32_t>(rng.weighted_index(weights));
      const double gap =
          rng.exponential(static_cast<double>(config.mean_interarrival_us));
      s.arrival_gap_us = static_cast<uint32_t>(
          std::min<long long>(std::llround(gap), UINT32_MAX));
    }
  });
  return sessions;
}

json::Value config_json(const FleetConfig& c) {
  json::Array sizes;
  for (const auto s : c.sizes) sizes.emplace_back(core::to_string(s));
  json::Object o;
  o.emplace_back("sessions", static_cast<int64_t>(c.sessions));
  o.emplace_back("devices", static_cast<int64_t>(c.devices));
  o.emplace_back("seed", static_cast<int64_t>(c.seed));
  o.emplace_back("cache_mb", static_cast<int64_t>(c.cache_mb));
  o.emplace_back("level", ir::to_string(c.level));
  o.emplace_back("sizes", std::move(sizes));
  o.emplace_back("mean_interarrival_us", static_cast<int64_t>(c.mean_interarrival_us));
  o.emplace_back("max_benchmarks", static_cast<int64_t>(c.max_benchmarks));
  // Only present when replay modules are mixed in, so reports from
  // replay-free configs (including the committed golden) stay
  // byte-identical to pre-replay wb_fleet.
  if (c.replay_modules > 0) {
    o.emplace_back("replay_modules", static_cast<int64_t>(c.replay_modules));
  }
  // Same contract: only present when snapshot warm starts are on.
  if (c.snapshot) o.emplace_back("snapshot", true);
  return o;
}

/// p50/p95/max of an integer-valued device attribute, as exact integers.
json::Value device_dist_json(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  json::Object o;
  o.emplace_back("p50", rounded(support::quantile_sorted(values, 0.50)));
  o.emplace_back("p95", rounded(support::quantile_sorted(values, 0.95)));
  o.emplace_back("max", values.empty() ? 0 : rounded(values.back()));
  return o;
}

json::Value fleet_json(const std::vector<Device>& devices) {
  uint64_t counts[3][2] = {};
  std::vector<double> cpu, net;
  cpu.reserve(devices.size());
  net.reserve(devices.size());
  for (const Device& d : devices) {
    ++counts[static_cast<size_t>(d.browser)][static_cast<size_t>(d.platform)];
    cpu.push_back(static_cast<double>(d.cpu_permille));
    net.push_back(static_cast<double>(d.net_ps_per_byte));
  }
  struct Keyed {
    std::string key;
    json::Object body;
  };
  std::vector<Keyed> keyed;
  for (size_t b = 0; b < 3; ++b) {
    for (size_t p = 0; p < 2; ++p) {
      if (counts[b][p] == 0) continue;
      Keyed k;
      const char* browser = env::to_string(static_cast<env::Browser>(b));
      const char* platform = env::to_string(static_cast<env::Platform>(p));
      k.key = std::string(browser) + '|' + platform;
      k.body.emplace_back("browser", browser);
      k.body.emplace_back("platform", platform);
      k.body.emplace_back("devices", static_cast<int64_t>(counts[b][p]));
      keyed.push_back(std::move(k));
    }
  }
  std::sort(keyed.begin(), keyed.end(),
            [](const Keyed& a, const Keyed& b) { return a.key < b.key; });
  json::Array cells;
  for (Keyed& k : keyed) cells.emplace_back(std::move(k.body));

  json::Object o;
  o.emplace_back("devices", static_cast<int64_t>(devices.size()));
  o.emplace_back("cells", std::move(cells));
  o.emplace_back("cpu_permille", device_dist_json(std::move(cpu)));
  o.emplace_back("net_ps_per_byte", device_dist_json(std::move(net)));
  return o;
}

json::Value cache_json(const ModuleCache& cache) {
  const ModuleCache::Stats& s = cache.stats();
  const uint64_t total = s.hits + s.misses;
  json::Object o;
  o.emplace_back("capacity_bytes", static_cast<int64_t>(cache.capacity_bytes()));
  o.emplace_back("hits", static_cast<int64_t>(s.hits));
  o.emplace_back("misses", static_cast<int64_t>(s.misses));
  o.emplace_back("hit_rate_permille",
                 static_cast<int64_t>(total ? s.hits * 1000 / total : 0));
  o.emplace_back("evictions", static_cast<int64_t>(s.evictions));
  o.emplace_back("uncacheable", static_cast<int64_t>(s.uncacheable));
  o.emplace_back("bytes_inserted", static_cast<int64_t>(s.bytes_inserted));
  o.emplace_back("entries", static_cast<int64_t>(cache.entries()));
  o.emplace_back("bytes_in_use", static_cast<int64_t>(cache.bytes_in_use()));
  return o;
}

}  // namespace

FleetReport run_fleet(const FleetConfig& config) {
  FleetReport report;
  const auto fail = [&](std::string message) {
    report.ok = false;
    report.error = std::move(message);
    return report;
  };
  if (config.sessions == 0) return fail("--sessions must be >= 1");
  if (config.devices == 0) return fail("--devices must be >= 1");
  if (config.sizes.empty()) return fail("workload size list is empty");
  const int jobs = resolve_jobs(config.jobs);

  // Workload grid: corpus x sizes, in corpus order (the zipf popularity
  // ranking follows this order).
  const auto& corpus = benchmarks::all_benchmarks();
  size_t bench_count = corpus.size();
  if (config.max_benchmarks > 0 && config.max_benchmarks < bench_count) {
    bench_count = config.max_benchmarks;
  }
  std::vector<Workload> workloads;
  workloads.reserve(bench_count * config.sizes.size());
  for (size_t i = 0; i < bench_count; ++i) {
    for (const core::InputSize size : config.sizes) {
      workloads.push_back(Workload{&corpus[i], size, nullptr});
    }
  }

  // Replay modules ride the same grid: record the wb::replay corpus once
  // (Chrome/Desktop, like the golden gate) and append the first N
  // name-sorted traces. They rank after the compiled corpus in the zipf
  // popularity order.
  replay::CorpusResult replay_corpus;
  if (config.replay_modules > 0) {
    const env::BrowserEnv recorder(env::Browser::Chrome, env::Platform::Desktop);
    replay_corpus = replay::record_corpus(recorder, jobs);
    if (!replay_corpus.ok()) {
      return fail("replay corpus: " + replay_corpus.failures.front().name +
                  ": " + replay_corpus.failures.front().error);
    }
    const size_t n = std::min<size_t>(config.replay_modules,
                                      replay_corpus.traces.size());
    for (size_t i = 0; i < n; ++i) {
      workloads.push_back(Workload{nullptr, core::InputSize::XS,
                                   &replay_corpus.traces[i]});
    }
  }

  // Phase 1 (parallel): one build + six measured environments per
  // workload.
  const bool snapshot_mode = config.snapshot && snap::snap_default();
  const std::vector<WorkloadMetrics> measured =
      measure_workloads(workloads, config.level, snapshot_mode, jobs);
  for (const WorkloadMetrics& m : measured) {
    if (!m.error.empty()) return fail(m.error);
  }

  // Phase 2: the device population and the drawn sessions. Split order is
  // fixed (devices first, then one split per shard), so every byte is a
  // function of the seed alone.
  support::Rng master(config.seed);
  const std::vector<Device> devices =
      build_fleet(config.devices, master.split());
  const std::vector<SessionRecord> sessions =
      draw_sessions(config, workloads.size(), master, jobs);

  // Phase 3 (serial, arrival order): replay the shared module cache and
  // aggregate percentile analytics. The cache is the only cross-session
  // state, and arrival order == session index order (gaps are
  // non-negative), so this loop is the semantics, not an approximation.
  ModuleCache cache(config.cache_mb * 1024 * 1024);
  FleetAnalytics analytics;
  env::Profile profiles[3][2];
  for (size_t b = 0; b < 3; ++b) {
    for (size_t p = 0; p < 2; ++p) {
      profiles[b][p] = env::profile_for(static_cast<env::Browser>(b),
                                        static_cast<env::Platform>(p));
    }
  }
  std::vector<uint64_t> module_sessions(workloads.size(), 0);
  std::vector<uint64_t> module_warm(workloads.size(), 0);
  std::vector<double> warm_startup_baseline, warm_startup_snapshot;
  uint64_t arrival_span_ps = 0;
  for (const SessionRecord& s : sessions) {
    arrival_span_ps += static_cast<uint64_t>(s.arrival_gap_us) * 1'000'000;
    const Device& device = devices[s.device];
    const size_t b = static_cast<size_t>(device.browser);
    const size_t p = static_cast<size_t>(device.platform);
    const WorkloadMetrics& wm = measured[s.workload];
    const CellMetrics& cell = wm.cells[b][p];
    const env::Profile& profile = profiles[b][p];

    const bool warm =
        cache.access(wm.cache_keys[b][p], wm.code_size * kCodeExpansion);
    // Cold: fetch the binary over the device's network and compile it.
    // Warm: both the HTTP cache and the code cache hit; only a cheap
    // compiled-module load remains. Compile/execute costs scale with the
    // device's CPU jitter; all arithmetic is exact u64.
    const uint64_t compile_ps =
        warm ? cell.decode_ps / kWarmLoadDivisor : cell.decode_ps;
    const uint64_t network_ps =
        warm ? 0 : wm.code_size * static_cast<uint64_t>(device.net_ps_per_byte);
    const uint64_t cpu = device.cpu_permille;
    uint64_t startup_ps =
        profile.page_overhead_ps + network_ps +
        (compile_ps + profile.wasm_instantiate_overhead_ps) * cpu / 1000;
    if (warm && wm.snapshot_bytes > 0) {
      // Snapshot warm hit: no compiled-module load and no instantiate —
      // the page maps the snapshot back in at the modeled restore cost.
      const uint64_t snap_startup_ps =
          profile.page_overhead_ps +
          snap::restore_cost_ps(wm.snapshot_bytes) * cpu / 1000;
      warm_startup_baseline.push_back(static_cast<double>(startup_ps));
      warm_startup_snapshot.push_back(static_cast<double>(snap_startup_ps));
      startup_ps = snap_startup_ps;
    }
    const uint64_t latency_ps = startup_ps + cell.exec_ps * cpu / 1000;

    SessionSample sample;
    sample.browser = device.browser;
    sample.platform = device.platform;
    sample.warm = warm;
    sample.latency_ps = latency_ps;
    sample.startup_ps = startup_ps;
    sample.memory_bytes = cell.memory_bytes;
    analytics.record(sample);
    ++module_sessions[s.workload];
    if (warm) ++module_warm[s.workload];
  }

  // Per-module traffic table, sorted by benchmark|size for canonical
  // output (every workload appears, even if no session drew it).
  struct Keyed {
    std::string key;
    json::Object body;
  };
  std::vector<Keyed> modules;
  modules.reserve(workloads.size());
  for (size_t i = 0; i < workloads.size(); ++i) {
    Keyed k;
    const std::string name = workload_name(workloads[i]);
    k.key = name + '|' + core::to_string(workloads[i].size);
    k.body.emplace_back("benchmark", name);
    k.body.emplace_back("size", core::to_string(workloads[i].size));
    k.body.emplace_back("code_size", static_cast<int64_t>(measured[i].code_size));
    k.body.emplace_back("sha256", measured[i].sha256);
    k.body.emplace_back("sessions", static_cast<int64_t>(module_sessions[i]));
    k.body.emplace_back("warm_sessions", static_cast<int64_t>(module_warm[i]));
    if (snapshot_mode) {
      k.body.emplace_back("snapshot_bytes",
                          static_cast<int64_t>(measured[i].snapshot_bytes));
    }
    modules.push_back(std::move(k));
  }
  std::sort(modules.begin(), modules.end(),
            [](const Keyed& a, const Keyed& b) { return a.key < b.key; });
  json::Array module_array;
  module_array.reserve(modules.size());
  for (Keyed& k : modules) module_array.emplace_back(std::move(k.body));

  json::Object root;
  root.emplace_back("schema_version", kSchemaVersion);
  root.emplace_back("tool", "wb_fleet");
  root.emplace_back("config", config_json(config));
  json::Object model;
  model.emplace_back("code_expansion", static_cast<int64_t>(kCodeExpansion));
  model.emplace_back("warm_load_divisor", static_cast<int64_t>(kWarmLoadDivisor));
  if (snapshot_mode) {
    model.emplace_back("snapshot_restore_base_ps",
                       static_cast<int64_t>(snap::kRestoreBasePs));
    model.emplace_back("snapshot_restore_per_byte_ps",
                       static_cast<int64_t>(snap::kRestorePerBytePs));
  }
  root.emplace_back("model", std::move(model));
  root.emplace_back("fleet", fleet_json(devices));
  root.emplace_back("arrival_span_ps", static_cast<int64_t>(arrival_span_ps));
  root.emplace_back("cache", cache_json(cache));
  root.emplace_back("overall", analytics.overall_json());
  root.emplace_back("cells", analytics.cells_json());
  root.emplace_back("modules", std::move(module_array));
  if (snapshot_mode) {
    // Warm-hit startup under the classic compiled-module load vs the
    // snapshot restore that actually priced those sessions — the measured
    // warm-start win of --snapshot, over identical session draws.
    json::Object cmp;
    cmp.emplace_back("warm_sessions",
                     static_cast<int64_t>(warm_startup_snapshot.size()));
    cmp.emplace_back("baseline_startup_ps",
                     device_dist_json(warm_startup_baseline));
    cmp.emplace_back("snapshot_startup_ps",
                     device_dist_json(warm_startup_snapshot));
    root.emplace_back("snapshot_warm_start", std::move(cmp));
  }
  report.doc = json::Value(std::move(root));

  const std::string dumped = report.doc.dump(2);
  report.digest = support::sha256_hex(std::span(
      reinterpret_cast<const uint8_t*>(dumped.data()), dumped.size()));

  // Human tables: latency/memory percentiles, cache behaviour, and the
  // top-of-zipf modules that dominate traffic.
  std::string tables = analytics.table();
  {
    const ModuleCache::Stats& cs = cache.stats();
    const uint64_t total = cs.hits + cs.misses;
    support::TextTable t("Shared compiled-module cache");
    t.set_header({"Capacity MB", "Hits", "Misses", "Hit%", "Evictions", "Entries"});
    t.add_row({std::to_string(config.cache_mb), std::to_string(cs.hits),
               std::to_string(cs.misses),
               support::fmt(total ? 100.0 * static_cast<double>(cs.hits) /
                                        static_cast<double>(total)
                                  : 0.0,
                            1),
               std::to_string(cs.evictions), std::to_string(cache.entries())});
    tables += "\n" + t.render();
  }
  if (snapshot_mode && !warm_startup_snapshot.empty()) {
    auto base = warm_startup_baseline;
    auto snapd = warm_startup_snapshot;
    std::sort(base.begin(), base.end());
    std::sort(snapd.begin(), snapd.end());
    const auto ms = [](double ps) { return support::fmt(ps / 1e9, 3); };
    support::TextTable t("Snapshot warm start (warm hits, startup ms)");
    t.set_header({"Pricing", "p50", "p95", "max"});
    t.add_row({"compiled-module load", ms(support::quantile_sorted(base, 0.50)),
               ms(support::quantile_sorted(base, 0.95)), ms(base.back())});
    t.add_row({"snapshot restore", ms(support::quantile_sorted(snapd, 0.50)),
               ms(support::quantile_sorted(snapd, 0.95)), ms(snapd.back())});
    tables += "\n" + t.render();
  }
  {
    std::vector<size_t> order(workloads.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (module_sessions[a] != module_sessions[b])
        return module_sessions[a] > module_sessions[b];
      return a < b;
    });
    support::TextTable t("Hottest modules");
    t.set_header({"Benchmark", "Size", "Sessions", "Warm%"});
    const size_t top = std::min<size_t>(order.size(), 8);
    for (size_t r = 0; r < top; ++r) {
      const size_t i = order[r];
      const double warm_pct =
          module_sessions[i] ? 100.0 * static_cast<double>(module_warm[i]) /
                                   static_cast<double>(module_sessions[i])
                             : 0.0;
      t.add_row({workload_name(workloads[i]), core::to_string(workloads[i].size),
                 std::to_string(module_sessions[i]), support::fmt(warm_pct, 1)});
    }
    tables += "\n" + t.render();
  }
  report.tables = std::move(tables);
  return report;
}

bool config_from_json(const json::Value& config, FleetConfig& out, std::string& error) {
  const auto require_int = [&](const char* key, auto& field) {
    const json::Value* v = config.find(key);
    if (!v || !v->is_int()) {
      error = std::string("config missing integer field: ") + key;
      return false;
    }
    field = static_cast<std::decay_t<decltype(field)>>(v->as_int());
    return true;
  };
  FleetConfig c;
  if (!require_int("sessions", c.sessions)) return false;
  if (!require_int("devices", c.devices)) return false;
  if (!require_int("seed", c.seed)) return false;
  if (!require_int("cache_mb", c.cache_mb)) return false;
  if (!require_int("mean_interarrival_us", c.mean_interarrival_us)) return false;
  if (!require_int("max_benchmarks", c.max_benchmarks)) return false;
  // Optional: absent in goldens recorded without replay modules.
  if (const json::Value* rm = config.find("replay_modules")) {
    if (!rm->is_int()) {
      error = "config field replay_modules is not an integer";
      return false;
    }
    c.replay_modules = static_cast<uint32_t>(rm->as_int());
  }
  // Optional: absent in goldens recorded without snapshot warm starts.
  if (const json::Value* sn = config.find("snapshot")) {
    if (!sn->is_bool()) {
      error = "config field snapshot is not a bool";
      return false;
    }
    c.snapshot = sn->as_bool();
  }

  const json::Value* level = config.find("level");
  if (!level || !level->is_string()) {
    error = "config missing string field: level";
    return false;
  }
  bool found = false;
  for (const ir::OptLevel l : {ir::OptLevel::O0, ir::OptLevel::O1, ir::OptLevel::O2,
                               ir::OptLevel::O3, ir::OptLevel::Ofast, ir::OptLevel::Os,
                               ir::OptLevel::Oz}) {
    if (level->as_string() == ir::to_string(l)) {
      c.level = l;
      found = true;
    }
  }
  if (!found) {
    error = "config has unknown level: " + level->as_string();
    return false;
  }

  const json::Value* sizes = config.find("sizes");
  if (!sizes || !sizes->is_array() || sizes->as_array().empty()) {
    error = "config missing sizes array";
    return false;
  }
  c.sizes.clear();
  for (const json::Value& s : sizes->as_array()) {
    bool size_found = false;
    for (const core::InputSize candidate : core::kAllSizes) {
      if (s.is_string() && s.as_string() == core::to_string(candidate)) {
        c.sizes.push_back(candidate);
        size_found = true;
      }
    }
    if (!size_found) {
      error = "config has unknown size: " + s.dump();
      return false;
    }
  }
  out = std::move(c);
  return true;
}

}  // namespace wb::fleet
