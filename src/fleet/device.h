// The modeled device population behind the fleet simulator: every
// simulated user session runs on one Device drawn from seeded
// distributions over env::Browser x env::Platform plus per-device CPU and
// network jitter. Jitter is quantized to integers at draw time so all
// per-session arithmetic downstream stays in exact u64 — the fleet report
// is golden-gated on byte equality.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "env/env.h"
#include "support/rng.h"

namespace wb::fleet {

struct Device {
  env::Browser browser = env::Browser::Chrome;
  env::Platform platform = env::Platform::Desktop;
  /// CPU slowness in per-mille of the calibrated env::Profile reference
  /// for this (browser, platform): 1000 = the paper's measurement machine,
  /// 3000 = a device 3x slower. Scales every compile/execute cost charged
  /// to this device's sessions (a Pareto tail, clamped).
  uint32_t cpu_permille = 1000;
  /// Modeled network fetch cost per wasm binary byte, in ps/byte
  /// (platform-dependent base link scaled by a heavy-tailed draw). Paid
  /// only on cold loads; warm loads come out of the HTTP + code cache.
  uint32_t net_ps_per_byte = 0;
};

/// Population shares and jitter shapes of the modeled fleet. The defaults
/// are the shipped mix; tests may narrow them.
struct FleetMix {
  /// Browser market shares: Chrome, Firefox, Edge (order of env::Browser).
  double browser_weights[3] = {0.62, 0.22, 0.16};
  /// Platform shares: Desktop, Mobile (order of env::Platform).
  double platform_weights[2] = {0.56, 0.44};
  /// CPU jitter ~ Pareto(shape, 1.0), clamped to cpu_max (in x of the
  /// reference device). Most devices are near the reference; the tail is
  /// long — that is what p99 tables are for.
  double cpu_pareto_shape = 3.0;
  double cpu_max = 6.0;
  /// Network jitter multiplies a per-platform base ps/byte cost
  /// (desktop ~ broadband, mobile ~ cellular) by Pareto(shape, 1.0)
  /// clamped to net_max.
  double net_pareto_shape = 2.2;
  double net_max = 25.0;
  uint64_t desktop_base_ps_per_byte = 160'000;   ///< ~50 Mbit/s
  uint64_t mobile_base_ps_per_byte = 640'000;    ///< ~12.5 Mbit/s
};

/// Draws `count` devices deterministically from `rng` (pass a split of the
/// fleet master seed). Device i is fully determined by (seed, i).
std::vector<Device> build_fleet(size_t count, support::Rng rng,
                                const FleetMix& mix = {});

}  // namespace wb::fleet
