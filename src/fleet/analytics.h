// Percentile analytics over simulated sessions: streaming p50/p95/p99
// latency and memory aggregation per (browser, platform) cell plus an
// overall roll-up, with warm-vs-cold startup distributions kept apart —
// the fleet-scale version of the paper's per-browser tables, reported as
// distributions (tail latency) rather than single means.
#pragma once

#include <cstdint>
#include <string>

#include "env/env.h"
#include "support/json.h"
#include "support/stats.h"

namespace wb::fleet {

/// One session, already resolved against the module cache.
struct SessionSample {
  env::Browser browser = env::Browser::Chrome;
  env::Platform platform = env::Platform::Desktop;
  bool warm = false;           ///< startup was a code-cache hit
  uint64_t latency_ps = 0;     ///< startup + scaled execution
  uint64_t startup_ps = 0;     ///< page + fetch + compile (or cache load)
  uint64_t memory_bytes = 0;   ///< peak page memory
};

class FleetAnalytics {
 public:
  void record(const SessionSample& s);

  /// Canonical per-(browser, platform) cell array, sorted by
  /// browser|platform name; cells with zero sessions are omitted.
  [[nodiscard]] support::json::Array cells_json() const;

  /// The all-sessions roll-up, same shape as one cell without the keys.
  [[nodiscard]] support::json::Value overall_json() const;

  /// Human-readable latency/memory table (support::TextTable render).
  [[nodiscard]] std::string table() const;

  [[nodiscard]] uint64_t sessions() const { return overall_.sessions; }

 private:
  struct Group {
    uint64_t sessions = 0;
    uint64_t warm = 0;
    support::StreamingQuantiles latency;       ///< ps
    support::StreamingQuantiles memory;        ///< bytes
    support::StreamingQuantiles startup_cold;  ///< ps
    support::StreamingQuantiles startup_warm;  ///< ps
  };

  Group cells_[3][2];  ///< [browser][platform]
  Group overall_;
};

}  // namespace wb::fleet
