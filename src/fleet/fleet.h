// wb::fleet — the browser-fleet traffic simulator. Scales the study from
// 492 one-shot cells to a production-shaped workload: millions of user
// sessions across a modeled device population, a heavy-tailed arrival
// process over the benchmark corpus, and a shared compiled-module code
// cache that turns repeat loads into warm hits — the axis where the
// paper's cold-start findings become a systems problem.
//
// Everything is deterministic from one seed on the virtual clock:
//   * each distinct (benchmark, size) workload is built once and measured
//     once per (browser, platform) through env::BrowserEnv (fanned out on
//     support::ThreadPool — cells are independent, so the schedule cannot
//     change a bit);
//   * session attributes (device, workload, inter-arrival gap) are drawn
//     in fixed-size shards whose seeds derive serially via Rng::split(),
//     the same jobs-invariance discipline as wb_fuzz;
//   * the cache replay and analytics run serially in arrival order.
// The report is canonical JSON, so `--jobs=1` vs `--jobs=N` and repeated
// runs produce byte-identical documents (and SHA-256 digests).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/study.h"
#include "support/json.h"

namespace wb::fleet {

inline constexpr int kSchemaVersion = 1;

/// Compiled machine code is larger than the wasm binary; cache entries
/// model that expansion (V8 reports ~4-10x for Liftoff/TurboFan output).
inline constexpr uint64_t kCodeExpansion = 8;

/// A warm cache hit still deserializes/relocates the compiled module;
/// modeled as decode cost divided by this (measured V8 code-cache loads
/// are an order of magnitude cheaper than compiles).
inline constexpr uint64_t kWarmLoadDivisor = 12;

struct FleetConfig {
  uint64_t sessions = 1'000'000;
  uint32_t devices = 4096;
  uint64_t seed = 1;
  uint64_t cache_mb = 64;
  /// Workload grid: every corpus benchmark at each of these input sizes.
  std::vector<core::InputSize> sizes = {core::InputSize::XS};
  ir::OptLevel level = ir::OptLevel::O2;
  /// Mean inter-arrival gap of the Poisson session arrival process.
  uint64_t mean_interarrival_us = 350;
  /// 0 = whole 41-benchmark corpus; tests shrink the measurement grid.
  uint32_t max_benchmarks = 0;
  /// Mix the first N (name-sorted) wb::replay corpus recordings into the
  /// workload grid as `replay:<name>` modules, re-priced per device cell
  /// with replay::replay_in_env. 0 = none (the committed golden's
  /// configuration, byte-identical to pre-replay reports).
  uint32_t replay_modules = 0;
  /// Warm cache hits restore a wb::snap instance snapshot instead of
  /// deserializing + re-instantiating the compiled module: startup pays
  /// the modeled bytes-proportional restore cost and skips both the
  /// compiled-module load and the instantiate overhead. Off by default
  /// (the committed golden's configuration).
  bool snapshot = false;
  /// Measurement fan-out. 0 = WB_JOBS env var, then hardware. Never
  /// changes any reported byte, only wall-clock.
  int jobs = 0;
};

struct FleetReport {
  bool ok = true;
  std::string error;
  support::json::Value doc;  ///< canonical schema-versioned document
  std::string digest;        ///< SHA-256 hex of doc.dump(2)
  std::string tables;        ///< human-readable summary tables
};

FleetReport run_fleet(const FleetConfig& config);

/// Rebuilds a FleetConfig from a report's "config" object (--check replays
/// the configuration recorded in the golden itself). Returns false and
/// fills `error` on malformed input.
bool config_from_json(const support::json::Value& config, FleetConfig& out,
                      std::string& error);

}  // namespace wb::fleet
