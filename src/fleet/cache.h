// The shared compiled-module code cache: the systems answer to the
// paper's cold-start finding. Keys are content address (SHA-256 of the
// wasm binary) x compile target (browser x platform) — the same discipline
// as V8's isolate/code cache, where a script hash plus compile flags name
// a reusable compiled artifact. Values model the compiled machine code
// footprint. Eviction is strict LRU and fully deterministic, so a fleet
// replay touches the cache in arrival order and reproduces byte-identical
// hit/miss/eviction counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <string>
#include <string_view>
#include <unordered_map>

namespace wb::fleet {

class ModuleCache {
 public:
  /// capacity_bytes == 0 disables caching entirely (every access misses).
  explicit ModuleCache(uint64_t capacity_bytes) : capacity_(capacity_bytes) {}

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;        ///< entries evicted to make room
    uint64_t bytes_inserted = 0;   ///< total compiled bytes ever inserted
    uint64_t uncacheable = 0;      ///< misses too large to ever fit
  };

  /// One session's startup lookup. Returns true on a warm hit (the entry
  /// is touched most-recently-used); on a miss the compiled module is
  /// inserted, evicting least-recently-used entries until it fits.
  bool access(std::string_view key, uint64_t bytes);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] uint64_t capacity_bytes() const { return capacity_; }
  [[nodiscard]] uint64_t bytes_in_use() const { return used_; }
  [[nodiscard]] size_t entries() const { return lru_.size(); }

 private:
  struct Entry {
    std::string key;
    uint64_t bytes;
  };

  uint64_t capacity_;
  uint64_t used_ = 0;
  Stats stats_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
};

}  // namespace wb::fleet
