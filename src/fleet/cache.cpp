#include "fleet/cache.h"

namespace wb::fleet {

bool ModuleCache::access(std::string_view key, uint64_t bytes) {
  const auto it = index_.find(std::string(key));
  if (it != index_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }
  ++stats_.misses;
  if (bytes > capacity_) {
    // Never cacheable at this capacity (capacity 0 lands here for every
    // module — the --cache-mb=0 all-cold baseline).
    ++stats_.uncacheable;
    return false;
  }
  while (used_ + bytes > capacity_) {
    const Entry& victim = lru_.back();
    used_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(Entry{std::string(key), bytes});
  index_.emplace(lru_.front().key, lru_.begin());
  used_ += bytes;
  stats_.bytes_inserted += bytes;
  return false;
}

}  // namespace wb::fleet
