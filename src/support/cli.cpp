#include "support/cli.h"

#include <cstdlib>

namespace wb::support {

bool CliTool::maybe_help(std::string_view arg) const {
  if (arg != "--help" && arg != "-h") return false;
  print_usage(stdout);
  std::exit(0);
}

void CliTool::unknown_flag(std::string_view arg) const {
  std::fprintf(stderr, "%s: unknown flag: %.*s\n", name_,
               static_cast<int>(arg.size()), arg.data());
  print_usage(stderr);
  std::exit(2);
}

void CliTool::die(const std::string& message) const {
  std::fprintf(stderr, "%s: %s\n", name_, message.c_str());
  std::exit(2);
}

void CliTool::print_usage(std::FILE* to) const {
  std::fputs(usage_, to);
}

}  // namespace wb::support
