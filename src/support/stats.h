// Statistics helpers used throughout the measurement harness: geometric
// means, five-number summaries (for the paper's Fig. 11 box plots), and
// speedup/slowdown classification (Tables 3 and 5).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace wb::support {

/// Geometric mean of strictly positive samples. Returns 0 for empty input.
double geomean(std::span<const double> xs);

/// Arithmetic mean. Returns 0 for empty input.
double mean(std::span<const double> xs);

/// Five-number summary: min, first quartile, median, third quartile, max.
/// Quartiles use linear interpolation between order statistics
/// (the same convention as numpy's default percentile method).
struct FiveNumber {
  double min = 0;
  double q1 = 0;
  double median = 0;
  double q3 = 0;
  double max = 0;
};

FiveNumber five_number_summary(std::span<const double> xs);

/// Classification of per-benchmark speed ratios against a baseline, as the
/// paper does in Tables 3/5: a benchmark where variant runs *faster* than
/// baseline contributes to the speedup bucket, slower to the slowdown one.
struct RatioStats {
  size_t slowdown_count = 0;   ///< # benchmarks where variant is slower
  double slowdown_gmean = 0;   ///< geomean of (variant_time / baseline_time) over those
  size_t speedup_count = 0;    ///< # benchmarks where variant is faster
  double speedup_gmean = 0;    ///< geomean of (baseline_time / variant_time) over those
  double all_gmean = 0;        ///< geomean of (baseline_time / variant_time) over all
  bool all_gmean_is_speedup = true;  ///< true if overall the variant wins
};

/// `variant` and `baseline` are parallel arrays of execution times.
RatioStats classify_ratios(std::span<const double> variant_times,
                           std::span<const double> baseline_times);

}  // namespace wb::support
