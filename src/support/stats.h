// Statistics helpers used throughout the measurement harness: geometric
// means, five-number summaries (for the paper's Fig. 11 box plots), and
// speedup/slowdown classification (Tables 3 and 5).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "support/rng.h"

namespace wb::support {

/// Geometric mean of strictly positive samples. Returns 0 for empty input.
double geomean(std::span<const double> xs);

/// Arithmetic mean. Returns 0 for empty input.
double mean(std::span<const double> xs);

/// Five-number summary: min, first quartile, median, third quartile, max.
/// Quartiles use linear interpolation between order statistics
/// (the same convention as numpy's default percentile method).
struct FiveNumber {
  double min = 0;
  double q1 = 0;
  double median = 0;
  double q3 = 0;
  double max = 0;
};

FiveNumber five_number_summary(std::span<const double> xs);

/// Linear-interpolated percentile of an already-sorted sample (numpy's
/// default method; p in [0, 1]). Returns 0 for empty input.
double quantile_sorted(std::span<const double> sorted, double p);

/// Streaming sample summary for fleet-scale analytics: samples arrive one
/// at a time, and the summary answers count/min/max/mean plus arbitrary
/// quantiles (same interpolation as five_number_summary).
///
/// With reservoir_capacity == 0 (the default) every sample is kept, so
/// quantiles are *exact* — the mode the golden-gated fleet report uses,
/// where byte-identical deterministic replay matters more than memory.
/// With a capacity, Vitter's algorithm R keeps a uniform reservoir of that
/// size; the sampling choices come from a caller-seeded Rng, so runs stay
/// deterministic. count/min/max/mean always cover every sample.
class StreamingQuantiles {
 public:
  explicit StreamingQuantiles(size_t reservoir_capacity = 0, uint64_t seed = 1)
      : capacity_(reservoir_capacity), rng_(seed) {}

  void add(double x);

  [[nodiscard]] size_t count() const { return count_; }
  [[nodiscard]] double min() const { return count_ ? min_ : 0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0; }
  [[nodiscard]] double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0;
  }

  /// Quantile over the kept samples (all of them in exact mode).
  [[nodiscard]] double quantile(double p) const;
  [[nodiscard]] FiveNumber five_number() const;

  /// Samples currently held (exact mode: everything added, in order).
  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  size_t capacity_;
  Rng rng_;
  size_t count_ = 0;
  double min_ = 0;
  double max_ = 0;
  double sum_ = 0;
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;  ///< lazily sorted copy for quantiles
  mutable bool sorted_valid_ = false;
};

/// Classification of per-benchmark speed ratios against a baseline, as the
/// paper does in Tables 3/5: a benchmark where variant runs *faster* than
/// baseline contributes to the speedup bucket, slower to the slowdown one.
struct RatioStats {
  size_t slowdown_count = 0;   ///< # benchmarks where variant is slower
  double slowdown_gmean = 0;   ///< geomean of (variant_time / baseline_time) over those
  size_t speedup_count = 0;    ///< # benchmarks where variant is faster
  double speedup_gmean = 0;    ///< geomean of (baseline_time / variant_time) over those
  double all_gmean = 0;        ///< geomean of (baseline_time / variant_time) over all
  bool all_gmean_is_speedup = true;  ///< true if overall the variant wins
};

/// `variant` and `baseline` are parallel arrays of execution times.
RatioStats classify_ratios(std::span<const double> variant_times,
                           std::span<const double> baseline_times);

}  // namespace wb::support
