// A small work-stealing thread pool for corpus-level parallelism. Every
// benchmark cell in the study is self-contained (own VM, own heap, own
// virtual clock), so cells can run concurrently without changing a single
// measured bit — the pool only schedules; determinism comes from the cells.
//
// Scheduling: each worker owns a deque. submit() distributes round-robin;
// a worker pops its own deque LIFO (cache-warm) and steals FIFO from the
// other workers when its own deque drains.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace wb::support {

/// std::thread::hardware_concurrency(), never 0.
unsigned hardware_jobs();

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = hardware_jobs()).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks may submit further tasks.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. If any task threw,
  /// rethrows the first exception (the others are dropped).
  void wait_idle();

  [[nodiscard]] size_t thread_count() const { return workers_.size(); }

 private:
  struct Queue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(size_t self);
  bool try_pop(size_t self, std::function<void()>& out);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;  ///< guards stop_/pending_/queued_/first_error_ and the CVs
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  bool stop_ = false;
  size_t pending_ = 0;     ///< submitted but not yet finished
  size_t queued_ = 0;      ///< sitting in a deque, not yet claimed
  size_t next_queue_ = 0;  ///< round-robin submit cursor
  std::exception_ptr first_error_;
};

/// Runs fn(0), ..., fn(n-1), distributing across `jobs` threads. With
/// jobs <= 1 (or n <= 1) everything runs inline on the caller in index
/// order — the serial baseline the parallel path must match bit-for-bit.
void parallel_for(size_t n, unsigned jobs, const std::function<void(size_t)>& fn);

}  // namespace wb::support
