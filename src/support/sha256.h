// SHA-256 (FIPS 180-4). Backs the JS engine's WebCrypto-style native
// digest builtin and the SHA benchmark's expected-output checks.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace wb::support {

std::array<uint8_t, 32> sha256(std::span<const uint8_t> data);

/// Hex string of the digest (lowercase).
std::string sha256_hex(std::span<const uint8_t> data);

}  // namespace wb::support
