#include "support/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace wb::support::json {

const Value* Value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : as_object()) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_value(const Value& v, int indent, int depth, std::string& out) {
  const auto newline = [&](int d) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<size_t>(indent) * d, ' ');
  };
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_int()) {
    out += std::to_string(v.as_int());
  } else if (v.is_double()) {
    const double d = v.as_double();
    if (!std::isfinite(d)) {
      out += "null";  // JSON has no Inf/NaN
      return;
    }
    char buf[32];
    const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, d);
    (void)ec;
    out.append(buf, end);
  } else if (v.is_string()) {
    append_escaped(out, v.as_string());
  } else if (v.is_array()) {
    const Array& a = v.as_array();
    if (a.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (size_t i = 0; i < a.size(); ++i) {
      if (i) out += ',';
      newline(depth + 1);
      dump_value(a[i], indent, depth + 1, out);
    }
    newline(depth);
    out += ']';
  } else {
    const Object& o = v.as_object();
    if (o.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    for (size_t i = 0; i < o.size(); ++i) {
      if (i) out += ',';
      newline(depth + 1);
      append_escaped(out, o[i].first);
      out += indent > 0 ? ": " : ":";
      dump_value(o[i].second, indent, depth + 1, out);
    }
    newline(depth);
    out += '}';
  }
}

class Parser {
 public:
  Parser(std::string_view text, std::string& error) : text_(text), error_(error) {}

  std::optional<Value> run() {
    skip_ws();
    Value v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      return std::nullopt;
    }
    return v;
  }

 private:
  void fail(const std::string& why) {
    if (error_.empty()) error_ = "offset " + std::to_string(pos_) + ": " + why;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool expect(char c) {
    if (eat(c)) return true;
    fail(std::string("expected '") + c + "'");
    return false;
  }

  bool parse_value(Value& out) {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return false;
    }
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': return parse_string_value(out);
      case 't': return parse_literal("true", Value(true), out);
      case 'f': return parse_literal("false", Value(false), out);
      case 'n': return parse_literal("null", Value(nullptr), out);
      default: return parse_number(out);
    }
  }

  bool parse_literal(const char* word, Value v, Value& out) {
    const size_t len = std::strlen(word);
    if (text_.substr(pos_, len) != word) {
      fail(std::string("invalid literal (expected ") + word + ")");
      return false;
    }
    pos_ += len;
    out = std::move(v);
    return true;
  }

  bool parse_number(Value& out) {
    const size_t start = pos_;
    if (eat('-')) {}
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    bool is_double = false;
    if (eat('.')) {
      is_double = true;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") {
      fail("invalid number");
      return false;
    }
    if (!is_double) {
      int64_t i = 0;
      const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), i);
      if (ec == std::errc() && p == tok.data() + tok.size()) {
        out = Value(i);
        return true;
      }
      // Out of int64 range: fall through to double.
    }
    double d = 0;
    const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (ec != std::errc() || p != tok.data() + tok.size()) {
      fail("invalid number");
      return false;
    }
    out = Value(d);
    return true;
  }

  bool parse_string(std::string& out) {
    if (!expect('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
              return false;
            }
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
              else {
                fail("invalid \\u escape");
                return false;
              }
            }
            // Encode as UTF-8 (surrogate pairs are not combined; the
            // serializer never emits escapes above U+001F anyway).
            if (cp < 0x80) {
              out += static_cast<char>(cp);
            } else if (cp < 0x800) {
              out += static_cast<char>(0xc0 | (cp >> 6));
              out += static_cast<char>(0x80 | (cp & 0x3f));
            } else {
              out += static_cast<char>(0xe0 | (cp >> 12));
              out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (cp & 0x3f));
            }
            break;
          }
          default:
            fail("invalid escape");
            return false;
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
    return false;
  }

  bool parse_string_value(Value& out) {
    std::string s;
    if (!parse_string(s)) return false;
    out = Value(std::move(s));
    return true;
  }

  bool parse_array(Value& out) {
    if (!expect('[')) return false;
    Array a;
    skip_ws();
    if (eat(']')) {
      out = Value(std::move(a));
      return true;
    }
    for (;;) {
      skip_ws();
      Value v;
      if (!parse_value(v)) return false;
      a.push_back(std::move(v));
      skip_ws();
      if (eat(']')) break;
      if (!expect(',')) return false;
    }
    out = Value(std::move(a));
    return true;
  }

  bool parse_object(Value& out) {
    if (!expect('{')) return false;
    Object o;
    skip_ws();
    if (eat('}')) {
      out = Value(std::move(o));
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      for (const auto& [k, v] : o) {
        if (k == key) {
          fail("duplicate object key: " + key);
          return false;
        }
      }
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      Value v;
      if (!parse_value(v)) return false;
      o.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (eat('}')) break;
      if (!expect(',')) return false;
    }
    out = Value(std::move(o));
    return true;
  }

  std::string_view text_;
  std::string& error_;
  size_t pos_ = 0;
};

}  // namespace

std::string Value::dump(int indent) const {
  std::string out;
  dump_value(*this, indent, 0, out);
  if (indent > 0) out += '\n';
  return out;
}

std::optional<Value> parse(std::string_view text, std::string& error) {
  error.clear();
  return Parser(text, error).run();
}

}  // namespace wb::support::json
