#include "support/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace wb::support {

std::string TextTable::render() const {
  std::vector<size_t> widths;
  auto widen = [&](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  if (!header_.empty()) widen(header_);
  for (const auto& row : rows_) widen(row);

  size_t total = 0;
  for (size_t w : widths) total += w + 3;

  std::ostringstream out;
  auto hline = [&] { out << std::string(total > 1 ? total - 1 : 1, '-') << "\n"; };
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      out << row[i] << std::string(widths[i] - row[i].size() + (i + 1 < row.size() ? 3 : 0), ' ');
    }
    out << "\n";
  };

  if (!title_.empty()) {
    out << "== " << title_ << " ==\n";
  }
  if (!header_.empty()) {
    emit_row(header_);
    hline();
  }
  for (size_t r = 0; r < rows_.size(); ++r) {
    if (std::find(rules_.begin(), rules_.end(), r) != rules_.end()) hline();
    emit_row(rows_[r]);
  }
  return out.str();
}

std::string TextTable::render_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out << ",";
      out << row[i];
    }
    out << "\n";
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string fmt(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

std::string fmt_ratio(double value, int digits) { return fmt(value, digits) + "x"; }

std::string fmt_kb(double bytes, int digits) { return fmt(bytes / 1024.0, digits); }

}  // namespace wb::support
