// Plain-text table rendering for bench binaries: every bench prints the
// same rows/series as the corresponding paper table or figure.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace wb::support {

/// A simple column-aligned ASCII table with an optional title.
/// Cells are strings; callers format numbers themselves (fixed precision
/// keeps bench output byte-stable across runs).
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header) { header_ = std::move(header); }
  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }
  /// Inserts a horizontal rule before the next added row.
  void add_rule() { rules_.push_back(rows_.size()); }

  [[nodiscard]] std::string render() const;
  [[nodiscard]] std::string render_csv() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<size_t> rules_;
};

/// Formats `value` with `digits` fractional digits ("3.14").
std::string fmt(double value, int digits = 2);

/// Formats a ratio the way the paper prints them: "0.88x".
std::string fmt_ratio(double value, int digits = 2);

/// Formats a byte count as KB with separators-free fixed formatting.
std::string fmt_kb(double bytes, int digits = 2);

}  // namespace wb::support
