// A minimal JSON value type with a strict parser and a canonical
// serializer. Backs the golden-result gate (tools/wb_study reads
// goldens/study.json with it) and trace-output validation.
//
// Deliberately small: objects preserve insertion order (so serialization
// is canonical and diffs are stable), integers that fit int64 round-trip
// exactly (cost_ps must never pass through a double), and parse errors
// carry a byte offset.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace wb::support::json {

class Value;
using Array = std::vector<Value>;
/// Insertion-ordered key/value pairs (duplicate keys are a parse error).
using Object = std::vector<std::pair<std::string, Value>>;

class Value {
 public:
  Value() : v_(nullptr) {}
  Value(std::nullptr_t) : v_(nullptr) {}
  Value(bool b) : v_(b) {}
  Value(int64_t i) : v_(i) {}
  Value(uint64_t u) : v_(static_cast<int64_t>(u)) {}
  Value(int i) : v_(static_cast<int64_t>(i)) {}
  Value(double d) : v_(d) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(const char* s) : v_(std::string(s)) {}
  Value(Array a) : v_(std::move(a)) {}
  Value(Object o) : v_(std::move(o)) {}

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(v_); }
  [[nodiscard]] bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  [[nodiscard]] bool is_double() const { return std::holds_alternative<double>(v_); }
  [[nodiscard]] bool is_number() const { return is_int() || is_double(); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(v_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<Array>(v_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<Object>(v_); }

  [[nodiscard]] bool as_bool() const { return std::get<bool>(v_); }
  [[nodiscard]] int64_t as_int() const { return std::get<int64_t>(v_); }
  [[nodiscard]] double as_double() const {
    return is_int() ? static_cast<double>(std::get<int64_t>(v_)) : std::get<double>(v_);
  }
  [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(v_); }
  [[nodiscard]] const Array& as_array() const { return std::get<Array>(v_); }
  [[nodiscard]] const Object& as_object() const { return std::get<Object>(v_); }
  [[nodiscard]] Array& as_array() { return std::get<Array>(v_); }
  [[nodiscard]] Object& as_object() { return std::get<Object>(v_); }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// Serializes canonically. indent = 0 emits one line; indent > 0
  /// pretty-prints with that many spaces per level. Object key order is
  /// insertion order; doubles use shortest round-trip formatting.
  [[nodiscard]] std::string dump(int indent = 0) const;

 private:
  std::variant<std::nullptr_t, bool, int64_t, double, std::string, Array, Object> v_;
};

/// Strict RFC 8259 subset parser (no comments, no trailing commas).
/// On failure returns nullopt and fills `error` with "offset N: why".
std::optional<Value> parse(std::string_view text, std::string& error);

}  // namespace wb::support::json
