#include "support/leb128.h"

namespace wb::support {

void write_uleb128(std::vector<uint8_t>& out, uint64_t value) {
  do {
    uint8_t byte = value & 0x7f;
    value >>= 7;
    if (value != 0) byte |= 0x80;
    out.push_back(byte);
  } while (value != 0);
}

void write_sleb128(std::vector<uint8_t>& out, int64_t value) {
  bool more = true;
  while (more) {
    uint8_t byte = value & 0x7f;
    value >>= 7;  // arithmetic shift
    const bool sign_bit = (byte & 0x40) != 0;
    if ((value == 0 && !sign_bit) || (value == -1 && sign_bit)) {
      more = false;
    } else {
      byte |= 0x80;
    }
    out.push_back(byte);
  }
}

std::optional<DecodeResult<uint64_t>> read_uleb128(std::span<const uint8_t> bytes) {
  uint64_t result = 0;
  unsigned shift = 0;
  for (size_t i = 0; i < bytes.size(); ++i) {
    if (shift >= 64) return std::nullopt;
    const uint8_t byte = bytes[i];
    const uint64_t chunk = byte & 0x7f;
    if (shift == 63 && chunk > 1) return std::nullopt;  // overflow
    result |= chunk << shift;
    if ((byte & 0x80) == 0) return DecodeResult<uint64_t>{result, i + 1};
    shift += 7;
  }
  return std::nullopt;  // truncated
}

std::optional<DecodeResult<int64_t>> read_sleb128(std::span<const uint8_t> bytes) {
  int64_t result = 0;
  unsigned shift = 0;
  for (size_t i = 0; i < bytes.size(); ++i) {
    if (shift >= 64) return std::nullopt;
    const uint8_t byte = bytes[i];
    result |= static_cast<int64_t>(static_cast<uint64_t>(byte & 0x7f) << shift);
    shift += 7;
    if ((byte & 0x80) == 0) {
      if (shift < 64 && (byte & 0x40) != 0) {
        result |= -(static_cast<int64_t>(1) << shift);  // sign-extend
      }
      return DecodeResult<int64_t>{result, i + 1};
    }
  }
  return std::nullopt;  // truncated
}

}  // namespace wb::support
