#include "support/thread_pool.h"

#include <utility>

namespace wb::support {

unsigned hardware_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = hardware_jobs();
  queues_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) queues_.push_back(std::make_unique<Queue>());
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  size_t target;
  {
    std::lock_guard lock(mutex_);
    ++pending_;
    ++queued_;
    target = next_queue_++ % queues_.size();
  }
  {
    std::lock_guard lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

bool ThreadPool::try_pop(size_t self, std::function<void()>& out) {
  // Own deque first (LIFO: the most recently pushed task is cache-warm),
  // then steal the oldest task from the other workers.
  {
    Queue& q = *queues_[self];
    std::lock_guard lock(q.mutex);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.back());
      q.tasks.pop_back();
      return true;
    }
  }
  for (size_t i = 1; i < queues_.size(); ++i) {
    Queue& q = *queues_[(self + i) % queues_.size()];
    std::lock_guard lock(q.mutex);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.front());
      q.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(size_t self) {
  for (;;) {
    std::function<void()> task;
    if (try_pop(self, task)) {
      {
        std::lock_guard lock(mutex_);
        --queued_;
      }
      try {
        task();
      } catch (...) {
        std::lock_guard lock(mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      bool idle;
      {
        std::lock_guard lock(mutex_);
        idle = --pending_ == 0;
      }
      if (idle) idle_cv_.notify_all();
      continue;
    }
    std::unique_lock lock(mutex_);
    work_cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
    if (stop_) return;
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
  if (first_error_) {
    std::exception_ptr e = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void parallel_for(size_t n, unsigned jobs, const std::function<void(size_t)>& fn) {
  if (jobs <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  if (jobs > n) jobs = static_cast<unsigned>(n);
  ThreadPool pool(jobs);
  for (size_t i = 0; i < n; ++i) {
    pool.submit([&fn, i] { fn(i); });
  }
  pool.wait_idle();
}

}  // namespace wb::support
