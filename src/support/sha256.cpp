#include "support/sha256.h"

#include <cstring>
#include <vector>

namespace wb::support {

namespace {

constexpr std::array<uint32_t, 64> kK = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

uint32_t rotr(uint32_t x, unsigned n) { return (x >> n) | (x << (32 - n)); }

}  // namespace

std::array<uint8_t, 32> sha256(std::span<const uint8_t> data) {
  std::array<uint32_t, 8> h = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                               0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

  // Padded message.
  const uint64_t bit_len = static_cast<uint64_t>(data.size()) * 8;
  std::vector<uint8_t> msg(data.begin(), data.end());
  msg.push_back(0x80);
  while (msg.size() % 64 != 56) msg.push_back(0);
  for (int i = 7; i >= 0; --i) msg.push_back(static_cast<uint8_t>(bit_len >> (8 * i)));

  uint32_t w[64];
  for (size_t block = 0; block < msg.size(); block += 64) {
    for (int t = 0; t < 16; ++t) {
      w[t] = (static_cast<uint32_t>(msg[block + 4 * t]) << 24) |
             (static_cast<uint32_t>(msg[block + 4 * t + 1]) << 16) |
             (static_cast<uint32_t>(msg[block + 4 * t + 2]) << 8) |
             static_cast<uint32_t>(msg[block + 4 * t + 3]);
    }
    for (int t = 16; t < 64; ++t) {
      const uint32_t s0 = rotr(w[t - 15], 7) ^ rotr(w[t - 15], 18) ^ (w[t - 15] >> 3);
      const uint32_t s1 = rotr(w[t - 2], 17) ^ rotr(w[t - 2], 19) ^ (w[t - 2] >> 10);
      w[t] = w[t - 16] + s0 + w[t - 7] + s1;
    }
    uint32_t a = h[0], b = h[1], c = h[2], d = h[3];
    uint32_t e = h[4], f = h[5], g = h[6], hh = h[7];
    for (int t = 0; t < 64; ++t) {
      const uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
      const uint32_t ch = (e & f) ^ (~e & g);
      const uint32_t temp1 = hh + s1 + ch + kK[static_cast<size_t>(t)] + w[t];
      const uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
      const uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const uint32_t temp2 = s0 + maj;
      hh = g;
      g = f;
      f = e;
      e = d + temp1;
      d = c;
      c = b;
      b = a;
      a = temp1 + temp2;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
    h[5] += f;
    h[6] += g;
    h[7] += hh;
  }

  std::array<uint8_t, 32> out;
  for (int i = 0; i < 8; ++i) {
    out[static_cast<size_t>(4 * i)] = static_cast<uint8_t>(h[static_cast<size_t>(i)] >> 24);
    out[static_cast<size_t>(4 * i + 1)] = static_cast<uint8_t>(h[static_cast<size_t>(i)] >> 16);
    out[static_cast<size_t>(4 * i + 2)] = static_cast<uint8_t>(h[static_cast<size_t>(i)] >> 8);
    out[static_cast<size_t>(4 * i + 3)] = static_cast<uint8_t>(h[static_cast<size_t>(i)]);
  }
  return out;
}

std::string sha256_hex(std::span<const uint8_t> data) {
  const auto digest = sha256(data);
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (uint8_t b : digest) {
    out += kHex[b >> 4];
    out += kHex[b & 0xf];
  }
  return out;
}

}  // namespace wb::support
