// LEB128 variable-length integer encoding, as used by the WebAssembly
// binary format (https://webassembly.github.io/spec/core/binary/values.html).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace wb::support {

/// Appends the unsigned LEB128 encoding of `value` to `out`.
void write_uleb128(std::vector<uint8_t>& out, uint64_t value);

/// Appends the signed LEB128 encoding of `value` to `out`.
void write_sleb128(std::vector<uint8_t>& out, int64_t value);

/// Result of a LEB128 decode: the value plus how many bytes were consumed.
template <typename T>
struct DecodeResult {
  T value{};
  size_t size = 0;
};

/// Decodes an unsigned LEB128 value from the front of `bytes`.
/// Returns nullopt on truncated or over-long (> 64 bit) input.
std::optional<DecodeResult<uint64_t>> read_uleb128(std::span<const uint8_t> bytes);

/// Decodes a signed LEB128 value from the front of `bytes`.
std::optional<DecodeResult<int64_t>> read_sleb128(std::span<const uint8_t> bytes);

}  // namespace wb::support
