#include "support/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace wb::support {

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0;
  double log_sum = 0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0;
  double sum = 0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double quantile_sorted(std::span<const double> sorted, double p) {
  if (sorted.empty()) return 0;
  if (sorted.size() == 1) return sorted.front();
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

FiveNumber five_number_summary(std::span<const double> xs) {
  if (xs.empty()) return {};
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  FiveNumber s;
  s.min = sorted.front();
  s.q1 = quantile_sorted(sorted, 0.25);
  s.median = quantile_sorted(sorted, 0.50);
  s.q3 = quantile_sorted(sorted, 0.75);
  s.max = sorted.back();
  return s;
}

void StreamingQuantiles::add(double x) {
  if (count_ == 0 || x < min_) min_ = x;
  if (count_ == 0 || x > max_) max_ = x;
  sum_ += x;
  ++count_;
  sorted_valid_ = false;
  if (capacity_ == 0 || samples_.size() < capacity_) {
    samples_.push_back(x);
    return;
  }
  // Algorithm R: the new sample replaces a uniformly-chosen slot with
  // probability capacity / count, keeping the reservoir uniform.
  const uint64_t j = rng_.next_below(count_);
  if (j < capacity_) samples_[static_cast<size_t>(j)] = x;
}

double StreamingQuantiles::quantile(double p) const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  return quantile_sorted(sorted_, p);
}

FiveNumber StreamingQuantiles::five_number() const {
  FiveNumber s;
  if (count_ == 0) return s;
  s.min = quantile(0.0);
  s.q1 = quantile(0.25);
  s.median = quantile(0.5);
  s.q3 = quantile(0.75);
  s.max = quantile(1.0);
  return s;
}

RatioStats classify_ratios(std::span<const double> variant_times,
                           std::span<const double> baseline_times) {
  assert(variant_times.size() == baseline_times.size());
  RatioStats stats;
  std::vector<double> slowdowns;   // variant/baseline where variant slower
  std::vector<double> speedups;    // baseline/variant where variant faster
  std::vector<double> all_ratios;  // baseline/variant
  for (size_t i = 0; i < variant_times.size(); ++i) {
    const double v = variant_times[i];
    const double b = baseline_times[i];
    all_ratios.push_back(b / v);
    if (v > b) {
      slowdowns.push_back(v / b);
    } else {
      speedups.push_back(b / v);
    }
  }
  stats.slowdown_count = slowdowns.size();
  stats.slowdown_gmean = geomean(slowdowns);
  stats.speedup_count = speedups.size();
  stats.speedup_gmean = geomean(speedups);
  const double g = geomean(all_ratios);
  stats.all_gmean_is_speedup = g >= 1.0;
  stats.all_gmean = stats.all_gmean_is_speedup ? g : 1.0 / g;
  return stats;
}

}  // namespace wb::support
