// Shared CLI ergonomics for the wb_* drivers. Every tool builds one
// CliTool from its name and usage text and gets the same three behaviors:
//
//   --help / -h        usage to stdout, exit 0
//   unknown flag       "<tool>: unknown flag: X" + usage to stderr, exit 2
//   die("message")     "<tool>: message" to stderr, exit 2
//
// Exit code 2 is reserved for operator errors (bad flags, unreadable
// files); the tools keep 1 for "ran fine, gate failed" so CI can tell a
// broken invocation from a real regression.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace wb::support {

class CliTool {
 public:
  /// Both strings must outlive the tool (string literals in practice).
  CliTool(const char* name, const char* usage_text)
      : name_(name), usage_(usage_text) {}

  /// Returns true iff `arg` is --help or -h — after printing the usage
  /// text to stdout and exiting 0, so "true" is never actually observed;
  /// the bool shape keeps call sites a one-liner in flag loops.
  bool maybe_help(std::string_view arg) const;

  [[noreturn]] void unknown_flag(std::string_view arg) const;
  [[noreturn]] void die(const std::string& message) const;
  void print_usage(std::FILE* to) const;

 private:
  const char* name_;
  const char* usage_;
};

}  // namespace wb::support
