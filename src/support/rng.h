// Deterministic xorshift64* RNG. All randomness in workload generation is
// seeded so every bench run is byte-for-byte reproducible.
#pragma once

#include <cstdint>

namespace wb::support {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed ? seed : 1) {}

  uint64_t next_u64() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545f4914f6cdd1dull;
  }

  /// Uniform in [0, bound).
  uint64_t next_below(uint64_t bound) { return bound ? next_u64() % bound : 0; }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Derives an independent child stream (splitmix64 finalizer over the
  /// parent's next raw output), advancing the parent by one step. Parallel
  /// consumers (fuzz workers, generator vs. mutator) each take a split so
  /// no two share — or correlate with — one sequence.
  Rng split() {
    uint64_t z = next_u64() + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return Rng(z);
  }

 private:
  uint64_t state_;
};

}  // namespace wb::support
