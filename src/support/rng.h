// Deterministic xorshift64* RNG. All randomness in workload generation is
// seeded so every bench run is byte-for-byte reproducible.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>

namespace wb::support {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed ? seed : 1) {}

  uint64_t next_u64() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545f4914f6cdd1dull;
  }

  /// Uniform in [0, bound).
  uint64_t next_below(uint64_t bound) { return bound ? next_u64() % bound : 0; }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Exponential variate with the given mean (inverse CDF over one
  /// next_double() draw). Backs arrival processes: inter-arrival gaps of a
  /// Poisson process with rate 1/mean are exponential(mean).
  double exponential(double mean) { return -mean * std::log1p(-next_double()); }

  /// Pareto variate with shape `alpha` and minimum `xm` (classic Pareto I,
  /// xm * (1-u)^(-1/alpha)). Heavy-tailed: models the long tail of slow
  /// devices and bad networks. Always >= xm; finite mean needs alpha > 1.
  double pareto(double alpha, double xm) {
    return xm * std::pow(1.0 - next_double(), -1.0 / alpha);
  }

  /// Picks index i with probability weights[i] / sum(weights), consuming
  /// one next_double() draw. Weights must be non-negative with a positive
  /// sum; the last index absorbs any floating-point slack.
  size_t weighted_index(std::span<const double> weights) {
    if (weights.empty()) return 0;
    double total = 0;
    for (const double w : weights) total += w;
    double r = next_double() * total;
    for (size_t i = 0; i + 1 < weights.size(); ++i) {
      r -= weights[i];
      if (r < 0) return i;
    }
    return weights.size() - 1;
  }

  /// Derives an independent child stream (splitmix64 finalizer over the
  /// parent's next raw output), advancing the parent by one step. Parallel
  /// consumers (fuzz workers, generator vs. mutator) each take a split so
  /// no two share — or correlate with — one sequence.
  Rng split() {
    uint64_t z = next_u64() + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return Rng(z);
  }

 private:
  uint64_t state_;
};

}  // namespace wb::support
