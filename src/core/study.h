// The measurement-study harness (the paper's primary contribution): given
// a benchmark source, an input size, an optimization level, and a
// toolchain, build all three targets and run them in browser
// environments, collecting the metrics every table/figure needs.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "backend/js_backend.h"
#include "backend/native_backend.h"
#include "backend/wasm_backend.h"
#include "env/env.h"
#include "ir/passes.h"

namespace wb::core {

enum class InputSize : uint8_t { XS, S, M, L, XL };
inline constexpr std::array<InputSize, 5> kAllSizes = {
    InputSize::XS, InputSize::S, InputSize::M, InputSize::L, InputSize::XL};
const char* to_string(InputSize s);

using Defines = std::vector<std::pair<std::string, std::string>>;

/// One subject program: mini-C source plus per-size -D defines
/// (PolyBench-style dataset selection).
struct BenchSource {
  std::string name;
  std::string suite;  ///< "PolyBenchC" or "CHStone"
  std::string description;  ///< paper Table 1 wording
  std::string source;
  std::array<Defines, 5> size_defines;

  [[nodiscard]] const Defines& defines_for(InputSize s) const {
    return size_defines[static_cast<size_t>(s)];
  }
};

/// All three compiled targets of one (benchmark, size, level, toolchain).
struct BuildResult {
  bool ok = true;
  std::string error;
  bool fast_math = false;
  backend::WasmArtifact wasm;
  std::string js_source;
  backend::NativeArtifact native;
};

BuildResult build(const BenchSource& bench, InputSize size, ir::OptLevel level,
                  backend::Toolchain toolchain = backend::Toolchain::Cheerp);

/// Metrics of the native ("x86") run.
struct NativeMetrics {
  bool ok = true;
  std::string error;
  int32_t result = 0;
  double time_ms = 0;
  uint64_t cost_ps = 0;  ///< same time on the exact virtual clock
  size_t code_size = 0;
  size_t memory_bytes = 0;
};

NativeMetrics run_native(const BuildResult& build, bool fast_math_costs = false);

/// Convenience: build + run one benchmark on one target in one browser.
struct Measurement {
  env::PageMetrics wasm;
  env::PageMetrics js;
};

Measurement measure(const BenchSource& bench, InputSize size, ir::OptLevel level,
                    const env::BrowserEnv& browser, const env::RunOptions& options = {});

}  // namespace wb::core
