#include "core/study.h"

#include "ir/exec.h"
#include "minic/minic.h"

namespace wb::core {

const char* to_string(InputSize s) {
  switch (s) {
    case InputSize::XS: return "XS";
    case InputSize::S: return "S";
    case InputSize::M: return "M";
    case InputSize::L: return "L";
    case InputSize::XL: return "XL";
  }
  return "?";
}

BuildResult build(const BenchSource& bench, InputSize size, ir::OptLevel level,
                  backend::Toolchain toolchain) {
  BuildResult out;
  minic::CompileOptions copts;
  copts.defines = bench.defines_for(size);

  std::string error;
  auto compile_once = [&]() -> std::optional<ir::Module> {
    auto m = minic::compile(bench.source, copts, error);
    if (!m) return std::nullopt;
    const ir::PipelineInfo info = ir::run_pipeline(*m, level);
    out.fast_math = info.fast_math;
    return m;
  };

  auto m1 = compile_once();
  if (!m1) {
    out.ok = false;
    out.error = bench.name + ": " + error;
    return out;
  }
  backend::WasmOptions wopts;
  wopts.toolchain = toolchain;
  wopts.fast_math = out.fast_math;
  out.wasm = backend::compile_to_wasm(std::move(*m1), wopts);
  if (!out.wasm.ok()) {
    out.ok = false;
    out.error = bench.name + " wasm: " + out.wasm.error;
    return out;
  }

  auto m2 = compile_once();
  if (!m2) {  // cannot happen if m1 compiled, but never dereference blind
    out.ok = false;
    out.error = bench.name + ": " + error;
    return out;
  }
  backend::JsOptions jopts;
  jopts.fast_math = out.fast_math;
  const backend::JsArtifact js = backend::compile_to_js(std::move(*m2), jopts);
  if (!js.ok()) {
    out.ok = false;
    out.error = bench.name + " js: " + js.error;
    return out;
  }
  out.js_source = js.source;

  auto m3 = compile_once();
  if (!m3) {
    out.ok = false;
    out.error = bench.name + ": " + error;
    return out;
  }
  out.native = backend::compile_to_native(std::move(*m3));
  return out;
}

NativeMetrics run_native(const BuildResult& build, bool fast_math_costs) {
  NativeMetrics metrics;
  ir::Executor exec(build.native.module);
  ir::NativeCostModel cost;
  if (fast_math_costs) cost.float_div = cost.float_div_fast;
  exec.set_cost_model(cost);
  exec.set_fuel(4'000'000'000ull);
  const ir::ExecResult r = exec.run("main");
  if (!r.ok) {
    metrics.ok = false;
    metrics.error = r.error;
    return metrics;
  }
  metrics.result = r.as_i32();
  metrics.time_ms = static_cast<double>(exec.stats().cost_ps) / 1e9;
  metrics.cost_ps = exec.stats().cost_ps;
  metrics.code_size = build.native.code_size;
  metrics.memory_bytes = exec.stats().memory_bytes;
  return metrics;
}

Measurement measure(const BenchSource& bench, InputSize size, ir::OptLevel level,
                    const env::BrowserEnv& browser, const env::RunOptions& options) {
  Measurement m;
  const BuildResult b = build(bench, size, level, options.toolchain);
  if (!b.ok) {
    m.wasm.ok = false;
    m.wasm.error = b.error;
    m.js.ok = false;
    m.js.error = b.error;
    return m;
  }
  m.wasm = browser.run_wasm(b.wasm, options);
  m.js = browser.run_js(b.js_source, options);
  if (m.wasm.ok && m.js.ok && m.wasm.result != m.js.result) {
    m.wasm.ok = false;
    m.wasm.error = "checksum mismatch between wasm and js for " + bench.name;
  }
  return m;
}

}  // namespace wb::core
