#include "snap/snap.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "support/leb128.h"
#include "support/sha256.h"

namespace wb::snap {

namespace {

std::atomic<bool> g_snap_default{true};

// --- canonical encoding helpers (the .wbr3 idiom from replay/trace.cpp) ---

void put_u32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

void put_bytes(std::vector<uint8_t>& out, std::span<const uint8_t> bytes) {
  support::write_uleb128(out, bytes.size());
  out.insert(out.end(), bytes.begin(), bytes.end());
}

void put_string(std::vector<uint8_t>& out, const std::string& s) {
  put_bytes(out, std::span(reinterpret_cast<const uint8_t*>(s.data()), s.size()));
}

/// Bounded reader over the serialized bytes; any failure poisons it so
/// the decoder can check once at the end of each section.
struct Reader {
  std::span<const uint8_t> bytes;
  size_t pos = 0;
  bool ok = true;

  uint64_t uleb() {
    if (!ok) return 0;
    const auto r = support::read_uleb128(bytes.subspan(pos));
    if (!r) {
      ok = false;
      return 0;
    }
    pos += r->size;
    return r->value;
  }
  uint8_t byte() {
    if (!ok || pos >= bytes.size()) {
      ok = false;
      return 0;
    }
    return bytes[pos++];
  }
  uint32_t u32() {
    if (!ok || pos + 4 > bytes.size()) {
      ok = false;
      return 0;
    }
    const uint32_t v = static_cast<uint32_t>(bytes[pos]) |
                       static_cast<uint32_t>(bytes[pos + 1]) << 8 |
                       static_cast<uint32_t>(bytes[pos + 2]) << 16 |
                       static_cast<uint32_t>(bytes[pos + 3]) << 24;
    pos += 4;
    return v;
  }
  /// A count that prefixes per-item payloads of >= 1 byte each; rejected
  /// when it exceeds the remaining input (malformed, don't reserve).
  uint64_t count() {
    const uint64_t n = uleb();
    if (ok && n > bytes.size() - pos) ok = false;
    return ok ? n : 0;
  }
  std::vector<uint8_t> blob() {
    const uint64_t n = uleb();
    if (!ok || n > bytes.size() - pos) {
      ok = false;
      return {};
    }
    std::vector<uint8_t> out(bytes.begin() + static_cast<ptrdiff_t>(pos),
                             bytes.begin() + static_cast<ptrdiff_t>(pos + n));
    pos += n;
    return out;
  }
  std::string str() {
    const std::vector<uint8_t> b = blob();
    return {b.begin(), b.end()};
  }
};

void put_u64s(std::vector<uint8_t>& out, std::span<const uint64_t> values) {
  support::write_uleb128(out, values.size());
  for (const uint64_t v : values) support::write_uleb128(out, v);
}

// --- wasm section ----------------------------------------------------------

constexpr size_t kPage = wasm::LinearMemory::kPageSize;

bool page_is_zero(std::span<const uint8_t> page) {
  for (const uint8_t b : page) {
    if (b != 0) return false;
  }
  return true;
}

void put_wasm_state(std::vector<uint8_t>& out,
                    const wasm::Instance::SnapshotState& s) {
  support::write_uleb128(out, s.globals.size());
  for (const wasm::Value& v : s.globals) support::write_uleb128(out, v.bits);

  out.push_back(s.has_memory ? 1 : 0);
  if (s.has_memory) {
    support::write_uleb128(out, s.memory_bytes.size());
    support::write_uleb128(out, s.memory_peak_bytes);
    support::write_uleb128(out, s.memory_grow_count);
    // Zero-page elision: only pages with content are carried, each as
    // (page index, raw 64 KiB payload).
    std::vector<uint32_t> live_pages;
    for (size_t p = 0; p * kPage < s.memory_bytes.size(); ++p) {
      if (!page_is_zero(std::span(s.memory_bytes).subspan(p * kPage, kPage))) {
        live_pages.push_back(static_cast<uint32_t>(p));
      }
    }
    support::write_uleb128(out, live_pages.size());
    for (const uint32_t p : live_pages) {
      support::write_uleb128(out, p);
      const uint8_t* page = s.memory_bytes.data() + static_cast<size_t>(p) * kPage;
      out.insert(out.end(), page, page + kPage);
    }
  }

  support::write_uleb128(out, s.table.size());
  for (const uint32_t t : s.table) support::write_uleb128(out, t);

  support::write_uleb128(out, s.funcs.size());
  for (const auto& f : s.funcs) {
    out.push_back(f.tier);
    support::write_uleb128(out, f.hotness);
    out.push_back(f.jit_state);
  }

  support::write_uleb128(out, s.stats.ops_executed);
  support::write_uleb128(out, s.stats.cost_ps);
  put_u64s(out, s.stats.arith_counts);
  support::write_uleb128(out, s.stats.calls);
  support::write_uleb128(out, s.stats.host_calls);
  support::write_uleb128(out, s.stats.memory_grows);
  support::write_uleb128(out, s.stats.tierups);

  for (const auto& tier : s.attr.class_counts) put_u64s(out, tier);
  put_u64s(out, s.attr.direct_ps);
}

bool read_u64s_into(Reader& r, std::span<uint64_t> out) {
  if (r.uleb() != out.size()) {
    r.ok = false;
    return false;
  }
  for (uint64_t& v : out) v = r.uleb();
  return r.ok;
}

bool read_wasm_state(Reader& r, wasm::Instance::SnapshotState& s) {
  const uint64_t n_globals = r.count();
  s.globals.resize(n_globals);
  for (auto& v : s.globals) v.bits = r.uleb();

  s.has_memory = r.byte() != 0;
  if (s.has_memory) {
    const uint64_t size = r.uleb();
    if (!r.ok || size % kPage != 0 || size > (uint64_t{1} << 33)) {
      r.ok = false;
      return false;
    }
    s.memory_bytes.assign(size, 0);
    s.memory_peak_bytes = r.uleb();
    s.memory_grow_count = r.uleb();
    const uint64_t n_pages = r.count();
    uint64_t prev = 0;
    for (uint64_t i = 0; i < n_pages && r.ok; ++i) {
      const uint64_t p = r.uleb();
      // Canonical form: strictly ascending page indices within bounds.
      if ((i > 0 && p <= prev) || (p + 1) * kPage > size ||
          r.pos + kPage > r.bytes.size()) {
        r.ok = false;
        return false;
      }
      std::copy_n(r.bytes.begin() + static_cast<ptrdiff_t>(r.pos), kPage,
                  s.memory_bytes.begin() + static_cast<ptrdiff_t>(p * kPage));
      r.pos += kPage;
      prev = p;
    }
  }

  const uint64_t n_table = r.count();
  s.table.resize(n_table);
  for (auto& t : s.table) t = static_cast<uint32_t>(r.uleb());

  const uint64_t n_funcs = r.count();
  s.funcs.resize(n_funcs);
  for (auto& f : s.funcs) {
    f.tier = r.byte();
    f.hotness = r.uleb();
    f.jit_state = r.byte();
  }

  s.stats.ops_executed = r.uleb();
  s.stats.cost_ps = r.uleb();
  if (!read_u64s_into(r, s.stats.arith_counts)) return false;
  s.stats.calls = r.uleb();
  s.stats.host_calls = r.uleb();
  s.stats.memory_grows = r.uleb();
  s.stats.tierups = r.uleb();

  for (auto& tier : s.attr.class_counts) {
    if (!read_u64s_into(r, tier)) return false;
  }
  if (!read_u64s_into(r, s.attr.direct_ps)) return false;
  return r.ok;
}

// --- js section ------------------------------------------------------------

constexpr uint8_t kFlagPinned = 1;
constexpr uint8_t kFlagYoung = 2;
constexpr uint8_t kFlagRemembered = 4;

void put_refs(std::vector<uint8_t>& out, const std::vector<js::ObjRef>& refs) {
  support::write_uleb128(out, refs.size());
  for (const js::ObjRef r : refs) support::write_uleb128(out, r);
}

bool read_refs(Reader& r, std::vector<js::ObjRef>& out) {
  const uint64_t n = r.count();
  out.resize(n);
  for (auto& ref : out) ref = static_cast<js::ObjRef>(r.uleb());
  return r.ok;
}

void put_gc_object(std::vector<uint8_t>& out, const js::GcObject& o) {
  out.push_back(static_cast<uint8_t>(o.kind));
  out.push_back(static_cast<uint8_t>((o.pinned ? kFlagPinned : 0) |
                                     (o.young ? kFlagYoung : 0) |
                                     (o.remembered ? kFlagRemembered : 0)));
  support::write_uleb128(out, o.serial);
  support::write_uleb128(out, o.shape);
  switch (o.kind) {
    case js::ObjKind::String:
      put_string(out, o.str());
      break;
    case js::ObjKind::Array:
      // Capacity is observable (object_bytes charges reserved slots into
      // live_bytes), so the encoding carries it alongside the contents.
      support::write_uleb128(out, o.elems().size());
      support::write_uleb128(out, o.elems().capacity());
      for (const js::JsValue v : o.elems()) support::write_uleb128(out, v.bits);
      break;
    case js::ObjKind::Object:
      support::write_uleb128(out, o.props().size());
      support::write_uleb128(out, o.props().capacity());
      for (const js::Prop& p : o.props()) {
        support::write_uleb128(out, p.key);
        support::write_uleb128(out, p.value.bits);
      }
      break;
    case js::ObjKind::Function:
    case js::ObjKind::Builtin:
      support::write_uleb128(out, o.fn_index());
      break;
    case js::ObjKind::Float64Array: {
      const auto& xs = std::get<std::vector<double>>(o.data);
      support::write_uleb128(out, xs.size());
      for (const double d : xs) {
        uint64_t bits;
        std::memcpy(&bits, &d, sizeof bits);
        support::write_uleb128(out, bits);
      }
      break;
    }
    case js::ObjKind::Int32Array: {
      const auto& xs = std::get<std::vector<int32_t>>(o.data);
      support::write_uleb128(out, xs.size());
      for (const int32_t v : xs) {
        support::write_uleb128(out, static_cast<uint32_t>(v));
      }
      break;
    }
    case js::ObjKind::Uint8Array:
      put_bytes(out, std::get<std::vector<uint8_t>>(o.data));
      break;
  }
}

bool read_gc_object(Reader& r, js::GcObject& o) {
  const uint8_t kind = r.byte();
  if (kind > static_cast<uint8_t>(js::ObjKind::Uint8Array)) {
    r.ok = false;
    return false;
  }
  o.kind = static_cast<js::ObjKind>(kind);
  const uint8_t flags = r.byte();
  o.pinned = (flags & kFlagPinned) != 0;
  o.young = (flags & kFlagYoung) != 0;
  o.remembered = (flags & kFlagRemembered) != 0;
  o.serial = static_cast<uint32_t>(r.uleb());
  o.shape = static_cast<uint32_t>(r.uleb());
  switch (o.kind) {
    case js::ObjKind::String:
      o.data = r.str();
      break;
    case js::ObjKind::Array: {
      const uint64_t n = r.count();
      const uint64_t cap = r.uleb();
      if (cap < n || cap > (uint64_t{1} << 32)) {
        r.ok = false;
        return false;
      }
      std::vector<js::JsValue> elems;
      elems.reserve(static_cast<size_t>(cap));
      elems.resize(static_cast<size_t>(n));
      for (auto& v : elems) v.bits = r.uleb();
      o.data = std::move(elems);
      break;
    }
    case js::ObjKind::Object: {
      const uint64_t n = r.count();
      const uint64_t cap = r.uleb();
      if (cap < n || cap > (uint64_t{1} << 32)) {
        r.ok = false;
        return false;
      }
      std::vector<js::Prop> props;
      props.reserve(static_cast<size_t>(cap));
      props.resize(static_cast<size_t>(n));
      for (auto& p : props) {
        p.key = static_cast<uint32_t>(r.uleb());
        p.value.bits = r.uleb();
      }
      o.data = std::move(props);
      break;
    }
    case js::ObjKind::Function:
    case js::ObjKind::Builtin:
      o.data = static_cast<uint32_t>(r.uleb());
      break;
    case js::ObjKind::Float64Array: {
      const uint64_t n = r.count();
      std::vector<double> xs(n);
      for (auto& d : xs) {
        const uint64_t bits = r.uleb();
        std::memcpy(&d, &bits, sizeof d);
      }
      o.data = std::move(xs);
      break;
    }
    case js::ObjKind::Int32Array: {
      const uint64_t n = r.count();
      std::vector<int32_t> xs(n);
      for (auto& v : xs) v = static_cast<int32_t>(static_cast<uint32_t>(r.uleb()));
      o.data = std::move(xs);
      break;
    }
    case js::ObjKind::Uint8Array:
      o.data = r.blob();
      break;
  }
  return r.ok;
}

void put_js_state(std::vector<uint8_t>& out, const js::Vm::SnapshotState& s) {
  put_u64s(out, s.globals_bits);
  put_refs(out, s.str_const_refs);

  support::write_uleb128(out, s.funcs.size());
  for (const auto& f : s.funcs) {
    out.push_back(f.tier);
    support::write_uleb128(out, f.hotness);
  }

  support::write_uleb128(out, s.prop_caches.size());
  for (const js::PropCache& c : s.prop_caches) {
    out.push_back(c.n);
    out.push_back(c.victim);
    for (const js::PropCacheEntry& e : c.entries) {
      support::write_uleb128(out, e.ref);
      support::write_uleb128(out, e.serial);
      support::write_uleb128(out, e.shape);
      support::write_uleb128(out, e.slot);
    }
  }

  support::write_uleb128(out, s.stats.ops_executed);
  support::write_uleb128(out, s.stats.cost_ps);
  support::write_uleb128(out, s.stats.tierups);
  support::write_uleb128(out, s.stats.host_calls);
  put_u64s(out, s.stats.arith_counts);

  for (const auto& tier : s.attr.class_counts) put_u64s(out, tier);
  put_u64s(out, s.attr.direct_ps);

  const js::Heap::Image& h = s.heap;
  support::write_uleb128(out, h.objects.size());
  for (const auto& o : h.objects) {
    out.push_back(o.has_value() ? 1 : 0);
    if (o) put_gc_object(out, *o);
  }
  put_refs(out, h.free_list);
  put_refs(out, h.nursery);
  put_refs(out, h.remset);
  support::write_uleb128(out, h.next_serial);
  support::write_uleb128(out, h.allocated_since_gc);
  support::write_uleb128(out, h.old_bytes);
  support::write_uleb128(out, h.major_baseline_bytes);
  support::write_uleb128(out, h.minor_collections);
  support::write_uleb128(out, h.stats.collections);
  support::write_uleb128(out, h.stats.objects_allocated);
  support::write_uleb128(out, h.stats.objects_freed);
  support::write_uleb128(out, h.stats.live_bytes);
  support::write_uleb128(out, h.stats.peak_live_bytes);
  support::write_uleb128(out, h.stats.external_bytes);
  support::write_uleb128(out, h.stats.peak_external_bytes);
}

bool read_js_state(Reader& r, js::Vm::SnapshotState& s) {
  const uint64_t n_globals = r.count();
  s.globals_bits.resize(n_globals);
  for (auto& g : s.globals_bits) g = r.uleb();
  if (!read_refs(r, s.str_const_refs)) return false;

  const uint64_t n_funcs = r.count();
  s.funcs.resize(n_funcs);
  for (auto& f : s.funcs) {
    f.tier = r.byte();
    f.hotness = r.uleb();
  }

  const uint64_t n_caches = r.count();
  s.prop_caches.resize(n_caches);
  for (auto& c : s.prop_caches) {
    c.n = r.byte();
    c.victim = r.byte();
    for (auto& e : c.entries) {
      e.ref = static_cast<js::ObjRef>(r.uleb());
      e.serial = static_cast<uint32_t>(r.uleb());
      e.shape = static_cast<uint32_t>(r.uleb());
      e.slot = static_cast<uint32_t>(r.uleb());
    }
  }

  s.stats.ops_executed = r.uleb();
  s.stats.cost_ps = r.uleb();
  s.stats.tierups = r.uleb();
  s.stats.host_calls = r.uleb();
  if (!read_u64s_into(r, s.stats.arith_counts)) return false;

  for (auto& tier : s.attr.class_counts) {
    if (!read_u64s_into(r, tier)) return false;
  }
  if (!read_u64s_into(r, s.attr.direct_ps)) return false;

  js::Heap::Image& h = s.heap;
  const uint64_t n_objects = r.count();
  h.objects.clear();
  h.objects.reserve(n_objects);
  for (uint64_t i = 0; i < n_objects && r.ok; ++i) {
    if (r.byte() == 0) {
      h.objects.emplace_back(std::nullopt);
      continue;
    }
    js::GcObject o;
    if (!read_gc_object(r, o)) return false;
    h.objects.emplace_back(std::move(o));
  }
  if (!read_refs(r, h.free_list)) return false;
  if (!read_refs(r, h.nursery)) return false;
  if (!read_refs(r, h.remset)) return false;
  h.next_serial = static_cast<uint32_t>(r.uleb());
  h.allocated_since_gc = r.uleb();
  h.old_bytes = r.uleb();
  h.major_baseline_bytes = r.uleb();
  h.minor_collections = r.uleb();
  h.stats.collections = r.uleb();
  h.stats.objects_allocated = r.uleb();
  h.stats.objects_freed = r.uleb();
  h.stats.live_bytes = static_cast<size_t>(r.uleb());
  h.stats.peak_live_bytes = static_cast<size_t>(r.uleb());
  h.stats.external_bytes = static_cast<size_t>(r.uleb());
  h.stats.peak_external_bytes = static_cast<size_t>(r.uleb());
  return r.ok;
}

void put_header(std::vector<uint8_t>& out, SnapKind kind, const std::string& name) {
  put_u32(out, kSnapMagic);
  support::write_uleb128(out, kSnapVersion);
  out.push_back(static_cast<uint8_t>(kind));
  put_string(out, name);
}

/// Checks magic/version and the expected kind; returns the name.
bool read_header(Reader& r, SnapKind expected, std::string& name, std::string& error) {
  if (r.u32() != kSnapMagic) {
    error = "bad snapshot magic";
    return false;
  }
  const uint64_t version = r.uleb();
  if (version != kSnapVersion) {
    error = "unsupported snapshot version " + std::to_string(version);
    return false;
  }
  const uint8_t kind = r.byte();
  if (!r.ok || kind != static_cast<uint8_t>(expected)) {
    error = "snapshot kind mismatch";
    return false;
  }
  name = r.str();
  return r.ok;
}

}  // namespace

std::vector<uint8_t> serialize(const WasmSnapshot& snap) {
  std::vector<uint8_t> out;
  out.reserve(256 + snap.state.memory_bytes.size() / 8);
  put_header(out, SnapKind::Wasm, snap.name);
  put_wasm_state(out, snap.state);
  return out;
}

std::vector<uint8_t> serialize(const JsSnapshot& snap) {
  std::vector<uint8_t> out;
  out.reserve(1024);
  put_header(out, SnapKind::Js, snap.name);
  put_js_state(out, snap.state);
  return out;
}

std::optional<WasmSnapshot> parse_wasm(std::span<const uint8_t> bytes,
                                       std::string& error) {
  Reader r{bytes};
  WasmSnapshot snap;
  if (!read_header(r, SnapKind::Wasm, snap.name, error)) return std::nullopt;
  if (!read_wasm_state(r, snap.state) || !r.ok) {
    error = "truncated or malformed wasm snapshot";
    return std::nullopt;
  }
  if (r.pos != bytes.size()) {
    error = "trailing bytes after snapshot";
    return std::nullopt;
  }
  snap.bytes = bytes.size();
  snap.sha256 = support::sha256_hex(bytes);
  return snap;
}

std::optional<JsSnapshot> parse_js(std::span<const uint8_t> bytes,
                                   std::string& error) {
  Reader r{bytes};
  JsSnapshot snap;
  if (!read_header(r, SnapKind::Js, snap.name, error)) return std::nullopt;
  if (!read_js_state(r, snap.state) || !r.ok) {
    error = "truncated or malformed js snapshot";
    return std::nullopt;
  }
  if (r.pos != bytes.size()) {
    error = "trailing bytes after snapshot";
    return std::nullopt;
  }
  snap.bytes = bytes.size();
  snap.sha256 = support::sha256_hex(bytes);
  return snap;
}

std::string digest_hex(const WasmSnapshot& snap) {
  return support::sha256_hex(serialize(snap));
}

std::string digest_hex(const JsSnapshot& snap) {
  return support::sha256_hex(serialize(snap));
}

WasmSnapshot snapshot_wasm(const wasm::Instance& inst, std::string name) {
  WasmSnapshot snap;
  snap.name = std::move(name);
  snap.state = inst.capture_snapshot();
  const std::vector<uint8_t> bytes = serialize(snap);
  snap.bytes = bytes.size();
  snap.sha256 = support::sha256_hex(bytes);
  return snap;
}

JsSnapshot snapshot_js(const js::Vm& vm, std::string name) {
  JsSnapshot snap;
  snap.name = std::move(name);
  snap.state = vm.capture_snapshot();
  const std::vector<uint8_t> bytes = serialize(snap);
  snap.bytes = bytes.size();
  snap.sha256 = support::sha256_hex(bytes);
  return snap;
}

bool resume_wasm(wasm::Instance& inst, const WasmSnapshot& snap, Resume mode) {
  if (!inst.restore_snapshot(snap.state, mode == Resume::Exact)) return false;
  if (mode == Resume::WarmStart) {
    inst.charge(restore_cost_ps(snap.bytes), attr::Cause::Startup);
  }
  return true;
}

bool resume_js(js::Vm& vm, const JsSnapshot& snap, Resume mode) {
  if (!vm.restore_snapshot(snap.state, mode == Resume::Exact)) return false;
  if (mode == Resume::WarmStart) {
    vm.charge(restore_cost_ps(snap.bytes), attr::Cause::Startup);
  }
  return true;
}

void set_snap_default(bool enabled) {
  g_snap_default.store(enabled, std::memory_order_relaxed);
}

bool snap_default() {
  static const bool env_off = std::getenv("WB_NO_SNAP") != nullptr;
  return !env_off && g_snap_default.load(std::memory_order_relaxed);
}

}  // namespace wb::snap
