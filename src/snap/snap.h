// wb::snap — instance snapshot/resume with deterministic warm start.
//
// Serializes a warmed `wasm::Instance` or `js::Vm` — linear memory
// (zero-page-elided), globals, tables, the JS heap (objects, shapes,
// interned strings, free-list order, serials), inline-cache states, tier
// counters, and JIT verdicts — into a schema-versioned, sha256-identified
// canonical `.wbsnap` byte format. `resume_*` reconstructs a VM whose
// every subsequent virtual observable (cost_ps, ops_executed,
// arith_counts, attr lanes, fuel traps, tracer spans, boundary streams)
// is bit-identical to a freshly instantiated VM run to the same point:
//
//   Resume::Exact     also restores the virtual clock and attribution, so
//                     the continuation is bit-identical to the original
//                     run carrying on (the replay/identity-test mode).
//   Resume::WarmStart restores state only and charges a modeled
//                     bytes-proportional `snapshot_restore` cost to
//                     Cause::Startup — how `wb_study --snapshot` and
//                     `wb_fleet --snapshot` skip re-instantiation.
//
// The format mirrors wb::replay's `.wbr3` idiom: LE magic + uleb version,
// canonical LEB128 fields, strict parse (trailing bytes rejected), and
// SHA-256 of the canonical encoding as the snapshot's identity.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "js/interp.h"
#include "wasm/interp.h"

namespace wb::snap {

inline constexpr uint32_t kSnapMagic = 0x4e534257;  // "WBSN" little-endian
inline constexpr uint32_t kSnapVersion = 1;

enum class SnapKind : uint8_t { Wasm = 0, Js = 1 };

/// Modeled restore cost: a fixed mapping/fixup pause plus a
/// bytes-proportional copy term (~40 GB/s, the memcpy bandwidth class of
/// a real engine's snapshot deserializer). Charged to Cause::Startup on
/// a WarmStart resume in place of the decode + instantiate pipeline.
inline constexpr uint64_t kRestoreBasePs = 2'000'000;  // 2 us fixed
inline constexpr uint64_t kRestorePerBytePs = 25;      // ~1.6 us per 64 KiB page

[[nodiscard]] constexpr uint64_t restore_cost_ps(uint64_t snapshot_bytes) {
  return kRestoreBasePs + kRestorePerBytePs * snapshot_bytes;
}

/// A captured Wasm instance: the VM state plus the derived identity of
/// its canonical encoding (filled by snapshot_wasm / parse_wasm).
struct WasmSnapshot {
  std::string name;
  wasm::Instance::SnapshotState state;
  uint64_t bytes = 0;   ///< canonical `.wbsnap` size (the restore-cost input)
  std::string sha256;   ///< hex digest of the canonical encoding
};

struct JsSnapshot {
  std::string name;
  js::Vm::SnapshotState state;
  uint64_t bytes = 0;
  std::string sha256;
};

/// Captures a warmed instance (between invokes). Serializes once to fill
/// the size/digest identity fields.
[[nodiscard]] WasmSnapshot snapshot_wasm(const wasm::Instance& inst,
                                         std::string name = {});
[[nodiscard]] JsSnapshot snapshot_js(const js::Vm& vm, std::string name = {});

enum class Resume : uint8_t { Exact = 0, WarmStart = 1 };

/// Restores a snapshot into a freshly constructed, already-configured
/// instance over the same module. Returns false on shape mismatch.
bool resume_wasm(wasm::Instance& inst, const WasmSnapshot& snap, Resume mode);
bool resume_js(js::Vm& vm, const JsSnapshot& snap, Resume mode);

/// Canonical `.wbsnap` codec. Serialization elides all-zero 64 KiB linear
/// memory pages; parse is strict (bad magic/version/shape or trailing
/// bytes fail).
[[nodiscard]] std::vector<uint8_t> serialize(const WasmSnapshot& snap);
[[nodiscard]] std::vector<uint8_t> serialize(const JsSnapshot& snap);
std::optional<WasmSnapshot> parse_wasm(std::span<const uint8_t> bytes,
                                       std::string& error);
std::optional<JsSnapshot> parse_js(std::span<const uint8_t> bytes,
                                   std::string& error);
/// SHA-256 hex of the canonical encoding (the snapshot's identity).
[[nodiscard]] std::string digest_hex(const WasmSnapshot& snap);
[[nodiscard]] std::string digest_hex(const JsSnapshot& snap);

/// Process-wide default for whether snapshot/resume dogfooding is active
/// on the replay paths (overridden per-call-site). Always false when
/// WB_NO_SNAP is set in the environment. Never changes results — resume
/// is observable-identical by construction; the latch exists for
/// bisection, exactly like WB_NO_QUICKEN / WB_NO_JIT.
void set_snap_default(bool enabled);
bool snap_default();

}  // namespace wb::snap
