#include "minic/minic.h"

#include <cctype>
#include <cmath>
#include <cstring>
#include <map>
#include <unordered_map>

namespace wb::minic {

namespace {

using ir::BinOp;
using ir::CastOp;
using ir::Expr;
using ir::ExprPtr;
using ir::Intrinsic;
using ir::MemTy;
using ir::Stmt;
using ir::StmtPtr;
using ir::Ty;
using ir::UnOp;

// =============================================================== lexer

enum class TK : uint8_t { Eof, Ident, Int, Float, Punct };

struct Tok {
  TK kind = TK::Eof;
  std::string text;
  uint64_t ival = 0;
  double fval = 0;
  uint32_t line = 1;
};

class Lexer {
 public:
  Lexer(std::string_view src, std::string& error) : src_(src), error_(error) {}

  /// Tokenizes, expanding object-like #define macros.
  bool run(const std::vector<std::pair<std::string, std::string>>& predefines,
           std::vector<Tok>& out) {
    for (const auto& [name, value] : predefines) {
      std::vector<Tok> body;
      std::string err2;
      Lexer sub(value, err2);
      std::vector<Tok> raw;
      if (!sub.scan_all(raw)) {
        error_ = "bad predefine " + name + ": " + err2;
        return false;
      }
      raw.pop_back();  // drop Eof
      defines_[name] = std::move(raw);
    }

    std::vector<Tok> raw;
    if (!scan_all(raw)) return false;

    // Expand macros (with nesting, bounded).
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i].kind == TK::Ident) {
        const auto it = defines_.find(raw[i].text);
        if (it != defines_.end()) {
          std::vector<Tok> expanded;
          if (!expand(it->second, expanded, 0)) return false;
          for (auto& t : expanded) {
            t.line = raw[i].line;
            out.push_back(t);
          }
          continue;
        }
      }
      out.push_back(raw[i]);
    }
    return true;
  }

 private:
  bool expand(const std::vector<Tok>& body, std::vector<Tok>& out, int depth) {
    if (depth > 16) {
      error_ = "macro expansion too deep";
      return false;
    }
    for (const auto& t : body) {
      if (t.kind == TK::Ident) {
        const auto it = defines_.find(t.text);
        if (it != defines_.end()) {
          if (!expand(it->second, out, depth + 1)) return false;
          continue;
        }
      }
      out.push_back(t);
    }
    return true;
  }

  bool fail(const std::string& message) {
    error_ = message + " at line " + std::to_string(line_);
    return false;
  }

  bool scan_all(std::vector<Tok>& out) {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
        continue;
      }
      if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < src_.size() && !(src_[pos_] == '*' && src_[pos_ + 1] == '/')) {
          if (src_[pos_] == '\n') ++line_;
          ++pos_;
        }
        if (pos_ + 1 >= src_.size()) return fail("unterminated comment");
        pos_ += 2;
        continue;
      }
      if (c == '#') {
        if (!scan_directive()) return false;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && pos_ + 1 < src_.size() &&
           std::isdigit(static_cast<unsigned char>(src_[pos_ + 1])))) {
        Tok t;
        if (!scan_number(t)) return false;
        out.push_back(std::move(t));
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        const size_t start = pos_;
        while (pos_ < src_.size() &&
               (std::isalnum(static_cast<unsigned char>(src_[pos_])) || src_[pos_] == '_')) {
          ++pos_;
        }
        Tok t;
        t.kind = TK::Ident;
        t.text = std::string(src_.substr(start, pos_ - start));
        t.line = line_;
        out.push_back(std::move(t));
        continue;
      }
      // Punctuation, longest first.
      static constexpr std::string_view kPuncts[] = {
          "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=",
          "/=",  "%=",  "&=", "|=", "^=", "++", "--", "<<", ">>", "+",  "-",
          "*",   "/",   "%",  "&",  "|",  "^",  "~",  "!",  "<",  ">",  "=",
          "?",   ":",   ";",  ",",  "(",  ")",  "[",  "]",  "{",  "}"};
      bool matched = false;
      for (std::string_view p : kPuncts) {
        if (src_.substr(pos_, p.size()) == p) {
          Tok t;
          t.kind = TK::Punct;
          t.text = std::string(p);
          t.line = line_;
          out.push_back(std::move(t));
          pos_ += p.size();
          matched = true;
          break;
        }
      }
      if (!matched) return fail(std::string("unexpected character '") + c + "'");
    }
    Tok eof;
    eof.kind = TK::Eof;
    eof.line = line_;
    out.push_back(eof);
    return true;
  }

  bool scan_directive() {
    ++pos_;  // '#'
    const size_t kw_start = pos_;
    while (pos_ < src_.size() &&
           std::isalpha(static_cast<unsigned char>(src_[pos_]))) {
      ++pos_;
    }
    const std::string_view kw = src_.substr(kw_start, pos_ - kw_start);
    if (kw != "define") return fail("unsupported preprocessor directive #" + std::string(kw));
    while (pos_ < src_.size() && (src_[pos_] == ' ' || src_[pos_] == '\t')) ++pos_;
    const size_t name_start = pos_;
    while (pos_ < src_.size() &&
           (std::isalnum(static_cast<unsigned char>(src_[pos_])) || src_[pos_] == '_')) {
      ++pos_;
    }
    const std::string name(src_.substr(name_start, pos_ - name_start));
    if (name.empty()) return fail("#define without a name");
    if (pos_ < src_.size() && src_[pos_] == '(') {
      return fail("function-like macros are not supported (" + name + ")");
    }
    const size_t body_start = pos_;
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
    const std::string body(src_.substr(body_start, pos_ - body_start));
    std::string err2;
    Lexer sub(body, err2);
    std::vector<Tok> raw;
    if (!sub.scan_all(raw)) return fail("bad #define body: " + err2);
    raw.pop_back();
    // -D predefines take precedence over in-source defaults
    // (PolyBench-style size selection: -DN=... overrides `#define N 32`).
    if (!defines_.count(name)) defines_[name] = std::move(raw);
    return true;
  }

  bool scan_number(Tok& t) {
    const size_t start = pos_;
    t.line = line_;
    bool is_float = false;
    if (src_[pos_] == '0' && pos_ + 1 < src_.size() &&
        (src_[pos_ + 1] == 'x' || src_[pos_ + 1] == 'X')) {
      pos_ += 2;
      uint64_t v = 0;
      while (pos_ < src_.size() && std::isxdigit(static_cast<unsigned char>(src_[pos_]))) {
        const char d = src_[pos_];
        v = v * 16 + static_cast<uint64_t>(
                         std::isdigit(static_cast<unsigned char>(d))
                             ? d - '0'
                             : std::tolower(static_cast<unsigned char>(d)) - 'a' + 10);
        ++pos_;
      }
      while (pos_ < src_.size() && (src_[pos_] == 'u' || src_[pos_] == 'U' ||
                                    src_[pos_] == 'l' || src_[pos_] == 'L')) {
        ++pos_;
      }
      t.kind = TK::Int;
      t.ival = v;
      return true;
    }
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.') {
        is_float = true;
        ++pos_;
      } else if (c == 'e' || c == 'E') {
        is_float = true;
        ++pos_;
        if (pos_ < src_.size() && (src_[pos_] == '+' || src_[pos_] == '-')) ++pos_;
      } else {
        break;
      }
    }
    const std::string text(src_.substr(start, pos_ - start));
    if (is_float) {
      t.kind = TK::Float;
      t.fval = std::strtod(text.c_str(), nullptr);
    } else {
      t.kind = TK::Int;
      t.ival = std::strtoull(text.c_str(), nullptr, 10);
    }
    while (pos_ < src_.size() && (src_[pos_] == 'u' || src_[pos_] == 'U' ||
                                  src_[pos_] == 'l' || src_[pos_] == 'L' ||
                                  src_[pos_] == 'f' || src_[pos_] == 'F')) {
      if (src_[pos_] == 'f' || src_[pos_] == 'F') {
        t.kind = TK::Float;
        t.fval = std::strtod(text.c_str(), nullptr);
      }
      ++pos_;
    }
    return true;
  }

  std::string_view src_;
  std::string& error_;
  size_t pos_ = 0;
  uint32_t line_ = 1;
  std::unordered_map<std::string, std::vector<Tok>> defines_;
};

// =============================================================== types

struct CType {
  enum class K : uint8_t { Void, U8, I32, U32, F64 } k = K::I32;

  bool operator==(const CType&) const = default;
};

Ty to_ir(CType t) {
  switch (t.k) {
    case CType::K::Void: return Ty::Void;
    case CType::K::F64: return Ty::F64;
    default: return Ty::I32;
  }
}

MemTy to_mem(CType t) {
  switch (t.k) {
    case CType::K::U8: return MemTy::U8;
    case CType::K::F64: return MemTy::F64;
    default: return MemTy::I32;
  }
}

bool is_unsigned_t(CType t) { return t.k == CType::K::U8 || t.k == CType::K::U32; }
bool is_float_t(CType t) { return t.k == CType::K::F64; }

// ============================================================== parser

struct Sym {
  bool is_global = false;
  uint32_t index = 0;            ///< register (local scalar) or global index
  CType type;
  std::vector<uint32_t> dims;    ///< empty for scalars
};

struct FuncSig {
  uint32_t index = 0;
  CType ret;
  std::vector<CType> params;
  bool defined = false;
};

/// A parsed value or assignable location.
struct Operand {
  enum class K : uint8_t { Value, ScalarVar, MemRef } kind = K::Value;
  ExprPtr value;     // Value
  Sym sym;           // ScalarVar
  ExprPtr addr;      // MemRef
  MemTy mem = MemTy::I32;
  CType type;
};

class Parser {
 public:
  Parser(std::vector<Tok> toks, const CompileOptions& options, std::string& error)
      : toks_(std::move(toks)), options_(options), error_(error) {}

  std::optional<ir::Module> run() {
    while (ok_ && !at_end()) parse_top_level();
    if (!ok_) return std::nullopt;
    for (const auto& [name, sig] : functions_) {
      if (!sig.defined) {
        return fail_ret("function declared but never defined: " + name);
      }
    }
    return std::move(module_);
  }

 private:
  // ------------------------------------------------------------ utility
  const Tok& peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  bool at_end() const { return peek().kind == TK::Eof; }
  const Tok& advance() { return toks_[pos_++]; }
  bool peek_punct(std::string_view p, size_t ahead = 0) const {
    return peek(ahead).kind == TK::Punct && peek(ahead).text == p;
  }
  bool peek_ident(std::string_view name) const {
    return peek().kind == TK::Ident && peek().text == name;
  }
  bool match_punct(std::string_view p) {
    if (!peek_punct(p)) return false;
    advance();
    return true;
  }
  bool match_ident(std::string_view name) {
    if (!peek_ident(name)) return false;
    advance();
    return true;
  }
  void expect_punct(std::string_view p) {
    if (!match_punct(p)) fail("expected '" + std::string(p) + "'");
  }
  void fail(const std::string& message) {
    if (ok_) {
      error_ = message + " at line " + std::to_string(peek().line);
      ok_ = false;
    }
  }
  std::nullopt_t fail_ret(const std::string& message) {
    if (ok_) {
      error_ = message;
      ok_ = false;
    }
    return std::nullopt;
  }

  // ---------------------------------------------------------- emission
  std::vector<StmtPtr>& sink() { return *emit_stack_.back(); }
  void emit(StmtPtr s) { sink().push_back(std::move(s)); }

  ir::Function& fn() { return module_.functions[current_fn_]; }
  uint32_t new_reg(Ty ty) { return fn().new_reg(ty); }

  // ------------------------------------------------------------- types
  bool peek_type() const {
    if (peek().kind != TK::Ident) return false;
    const std::string& t = peek().text;
    return t == "void" || t == "int" || t == "unsigned" || t == "char" ||
           t == "double" || t == "signed" || t == "const" || t == "static" ||
           t == "float" || t == "long" || t == "short";
  }

  std::optional<CType> parse_type() {
    while (match_ident("const") || match_ident("static")) {
    }
    if (match_ident("void")) return CType{CType::K::Void};
    if (match_ident("double")) return CType{CType::K::F64};
    if (peek_ident("float") || peek_ident("long") || peek_ident("short")) {
      fail("type '" + peek().text + "' is outside the mini-C subset (use int/unsigned/double)");
      return std::nullopt;
    }
    bool is_unsigned = false;
    bool is_signed = false;
    if (match_ident("unsigned")) is_unsigned = true;
    if (match_ident("signed")) is_signed = true;
    (void)is_signed;
    if (match_ident("char")) {
      if (!is_unsigned) {
        fail("plain/signed char unsupported; use unsigned char");
        return std::nullopt;
      }
      return CType{CType::K::U8};
    }
    match_ident("int");
    return CType{is_unsigned ? CType::K::U32 : CType::K::I32};
  }

  // --------------------------------------------------------- top level
  void parse_top_level() {
    if (match_punct(";")) return;
    auto type = parse_type();
    if (!ok_ || !type) return;
    if (peek().kind != TK::Ident) {
      fail("expected declarator name");
      return;
    }
    const std::string name = advance().text;
    if (peek_punct("(")) {
      parse_function(*type, name);
      return;
    }
    // Global variable(s).
    parse_global_declarator(*type, name);
    while (ok_ && match_punct(",")) {
      if (peek().kind != TK::Ident) {
        fail("expected declarator name");
        return;
      }
      const std::string next = advance().text;
      parse_global_declarator(*type, next);
    }
    expect_punct(";");
  }

  void parse_global_declarator(CType type, const std::string& name) {
    if (type.k == CType::K::Void) {
      fail("void variable");
      return;
    }
    std::vector<uint32_t> dims;
    while (match_punct("[")) {
      const auto n = parse_const_int();
      if (!ok_) return;
      dims.push_back(static_cast<uint32_t>(*n));
      expect_punct("]");
    }
    ir::GlobalVar g;
    g.name = name;
    g.elem = to_mem(type);
    g.count = 1;
    for (uint32_t d : dims) g.count *= d;
    if (match_punct("=")) {
      parse_initializer(type, g.init, g.count);
    }
    g.dynamic_alloc = g.init.empty() && !dims.empty() &&
                      g.byte_size() >= options_.dynamic_alloc_threshold;
    if (globals_.count(name) || functions_.count(name)) {
      fail("redefinition of " + name);
      return;
    }
    const uint32_t index = static_cast<uint32_t>(module_.globals.size());
    module_.globals.push_back(std::move(g));
    Sym sym;
    sym.is_global = true;
    sym.index = index;
    sym.type = type;
    sym.dims = std::move(dims);
    globals_[name] = std::move(sym);
  }

  void parse_initializer(CType type, std::vector<uint64_t>& out, size_t limit) {
    if (match_punct("{")) {
      while (ok_ && !peek_punct("}")) {
        parse_initializer(type, out, limit);
        if (!match_punct(",")) break;
      }
      expect_punct("}");
      return;
    }
    const auto v = parse_const_value(type);
    if (!ok_) return;
    if (out.size() >= limit) {
      fail("too many initializers");
      return;
    }
    out.push_back(*v);
  }

  // Constant expressions: parse via the normal expression machinery into
  // a throwaway sink, then require the result to fold to a constant.
  std::optional<int64_t> parse_const_int() {
    const auto bits = parse_const_value(CType{CType::K::I32});
    if (!bits) return std::nullopt;
    return static_cast<int32_t>(*bits);
  }

  std::optional<uint64_t> parse_const_value(CType want) {
    std::vector<StmtPtr> scratch;
    emit_stack_.push_back(&scratch);
    const bool had_fn = current_fn_ != UINT32_MAX;
    if (!had_fn) {
      // Constant expressions at file scope still need a register arena.
      module_.functions.emplace_back();
      current_fn_ = static_cast<uint32_t>(module_.functions.size() - 1);
    }
    Operand op = parse_ternary();
    emit_stack_.pop_back();
    ExprPtr e = ok_ ? to_value(std::move(op), want) : nullptr;
    if (!had_fn) {
      module_.functions.pop_back();
      current_fn_ = UINT32_MAX;
    }
    if (!ok_) return std::nullopt;
    if (!scratch.empty()) {
      fail("constant expression required");
      return std::nullopt;
    }
    fold(e);
    if (e->kind != Expr::Kind::Const) {
      fail("constant expression required");
      return std::nullopt;
    }
    return e->imm;
  }

  /// Minimal recursive constant folder for initializers/dims.
  void fold(ExprPtr& e);

  // ---------------------------------------------------------- functions
  void parse_function(CType ret, const std::string& name) {
    expect_punct("(");
    std::vector<CType> param_types;
    std::vector<std::string> param_names;
    if (!peek_punct(")")) {
      if (peek_ident("void") && peek_punct(")", 1)) {
        advance();
      } else {
        do {
          auto pt = parse_type();
          if (!ok_ || !pt) return;
          std::string pname;
          if (peek().kind == TK::Ident) pname = advance().text;
          if (match_punct("[")) {
            fail("array parameters unsupported; use globals");
            return;
          }
          param_types.push_back(*pt);
          param_names.push_back(pname);
        } while (match_punct(","));
      }
    }
    expect_punct(")");
    if (!ok_) return;

    auto it = functions_.find(name);
    if (it == functions_.end()) {
      FuncSig sig;
      sig.ret = ret;
      sig.params = param_types;
      sig.index = static_cast<uint32_t>(module_.functions.size());
      module_.functions.emplace_back();
      module_.functions.back().name = name;
      module_.functions.back().ret = to_ir(ret);
      for (CType p : param_types) {
        module_.functions.back().params.push_back(to_ir(p));
        module_.functions.back().reg_types.push_back(to_ir(p));
      }
      it = functions_.emplace(name, std::move(sig)).first;
    } else if (it->second.params.size() != param_types.size()) {
      fail("conflicting declaration of " + name);
      return;
    }

    if (match_punct(";")) return;  // prototype

    if (it->second.defined) {
      fail("redefinition of function " + name);
      return;
    }
    it->second.defined = true;
    current_fn_ = it->second.index;
    current_ret_ = ret;
    scopes_.clear();
    scopes_.emplace_back();
    for (size_t i = 0; i < param_names.size(); ++i) {
      Sym sym;
      sym.is_global = false;
      sym.index = static_cast<uint32_t>(i);
      sym.type = param_types[i];
      scopes_.back()[param_names[i]] = sym;
    }
    expect_punct("{");
    emit_stack_.push_back(&fn().body);
    while (ok_ && !peek_punct("}") && !at_end()) parse_statement();
    emit_stack_.pop_back();
    expect_punct("}");
    current_fn_ = UINT32_MAX;
  }

  // --------------------------------------------------------- statements
  void parse_statement() {
    if (!ok_) return;
    if (match_punct(";")) return;
    if (match_punct("{")) {
      scopes_.emplace_back();
      while (ok_ && !peek_punct("}") && !at_end()) parse_statement();
      scopes_.pop_back();
      expect_punct("}");
      return;
    }
    if (peek_type()) {
      parse_local_decl();
      return;
    }
    if (match_ident("if")) {
      expect_punct("(");
      ExprPtr cond = parse_condition();
      expect_punct(")");
      auto s = std::make_unique<Stmt>();
      s->kind = Stmt::Kind::If;
      s->e0 = std::move(cond);
      emit_stack_.push_back(&s->body);
      parse_statement();
      emit_stack_.pop_back();
      if (match_ident("else")) {
        emit_stack_.push_back(&s->else_body);
        parse_statement();
        emit_stack_.pop_back();
      }
      emit(std::move(s));
      return;
    }
    if (match_ident("while")) {
      expect_punct("(");
      std::vector<StmtPtr> cond_stmts;
      emit_stack_.push_back(&cond_stmts);
      ExprPtr cond = parse_condition();
      emit_stack_.pop_back();
      expect_punct(")");
      auto s = std::make_unique<Stmt>();
      s->kind = Stmt::Kind::While;
      if (cond_stmts.empty()) {
        s->e0 = std::move(cond);
        emit_stack_.push_back(&s->body);
        parse_statement();
        emit_stack_.pop_back();
      } else {
        // Conditions with short-circuit/ternary operators lower to
        // statements; they must re-evaluate every iteration:
        //   while (1) { <cond stmts>; if (!cond) break; body }
        s->e0 = ir::make_const_i32(1);
        for (auto& cs : cond_stmts) s->body.push_back(std::move(cs));
        s->body.push_back(make_exit_unless(std::move(cond)));
        emit_stack_.push_back(&s->body);
        parse_statement();
        emit_stack_.pop_back();
      }
      emit(std::move(s));
      return;
    }
    if (match_ident("do")) {
      std::vector<StmtPtr> body;
      emit_stack_.push_back(&body);
      parse_statement();
      emit_stack_.pop_back();
      if (!match_ident("while")) {
        fail("expected while after do body");
        return;
      }
      expect_punct("(");
      std::vector<StmtPtr> cond_stmts;
      emit_stack_.push_back(&cond_stmts);
      ExprPtr cond = parse_condition();
      emit_stack_.pop_back();
      expect_punct(")");
      expect_punct(";");
      if (cond_stmts.empty()) {
        auto s = std::make_unique<Stmt>();
        s->kind = Stmt::Kind::DoWhile;
        s->e0 = std::move(cond);
        s->body = std::move(body);
        emit(std::move(s));
        return;
      }
      // do body while(complex): while (1) { body'; <cond>; if (!c) break; }
      // `continue` must still reach the condition, so route it (and
      // loop-level breaks) through the same wrapper as for-loops.
      auto s = std::make_unique<Stmt>();
      s->kind = Stmt::Kind::While;
      s->e0 = ir::make_const_i32(1);
      if (contains_loop_level_continue(body)) {
        const uint32_t brk = new_reg(Ty::I32);
        rewrite_for_breaks(body, brk);
        s->body.push_back(ir::make_assign(brk, ir::make_const_i32(0)));
        auto inner = std::make_unique<Stmt>();
        inner->kind = Stmt::Kind::DoWhile;
        inner->e0 = ir::make_const_i32(0);
        inner->body = std::move(body);
        s->body.push_back(std::move(inner));
        auto brk_if = std::make_unique<Stmt>();
        brk_if->kind = Stmt::Kind::If;
        brk_if->e0 = ir::make_reg(Ty::I32, brk);
        auto break_stmt = std::make_unique<Stmt>();
        break_stmt->kind = Stmt::Kind::Break;
        brk_if->body.push_back(std::move(break_stmt));
        s->body.push_back(std::move(brk_if));
      } else {
        s->body = std::move(body);
      }
      for (auto& cs : cond_stmts) s->body.push_back(std::move(cs));
      s->body.push_back(make_exit_unless(std::move(cond)));
      emit(std::move(s));
      return;
    }
    if (match_ident("for")) {
      parse_for();
      return;
    }
    if (match_ident("switch")) {
      parse_switch();
      return;
    }
    if (match_ident("return")) {
      auto s = std::make_unique<Stmt>();
      s->kind = Stmt::Kind::Return;
      if (!peek_punct(";")) {
        Operand v = parse_expression();
        if (!ok_) return;
        if (current_ret_.k == CType::K::Void) {
          fail("returning a value from a void function");
          return;
        }
        s->e0 = to_value(std::move(v), current_ret_);
      } else if (current_ret_.k != CType::K::Void) {
        fail("missing return value");
        return;
      }
      expect_punct(";");
      emit(std::move(s));
      return;
    }
    if (match_ident("break")) {
      expect_punct(";");
      auto s = std::make_unique<Stmt>();
      s->kind = Stmt::Kind::Break;
      emit(std::move(s));
      return;
    }
    if (match_ident("continue")) {
      expect_punct(";");
      auto s = std::make_unique<Stmt>();
      s->kind = Stmt::Kind::Continue;
      emit(std::move(s));
      return;
    }
    // Expression statement.
    parse_expression_as_stmt();
    expect_punct(";");
  }

  /// Statement-level `i++` / `++i` on a scalar lowers to a single
  /// in-place update (the canonical loop-increment shape).
  bool try_parse_simple_incdec_stmt() {
    bool prefix = false;
    size_t ident_at = 0;
    if ((peek_punct("++") || peek_punct("--")) && peek(1).kind == TK::Ident) {
      prefix = true;
      ident_at = 1;
    } else if (peek().kind == TK::Ident &&
               (peek_punct("++", 1) || peek_punct("--", 1))) {
      ident_at = 0;
    } else {
      return false;
    }
    const size_t after = prefix ? 2 : 2;
    if (!(peek_punct(";", after) || peek_punct(")", after) || peek_punct(",", after))) {
      return false;
    }
    const Sym* sym = lookup(peek(ident_at).text);
    if (!sym || !sym->dims.empty()) return false;
    const std::string op_text = prefix ? peek(0).text : peek(1).text;
    const bool inc = op_text == "++";
    advance();
    advance();
    const Ty ty = to_ir(sym->type);
    ExprPtr one = is_float_t(sym->type) ? ir::make_const_f64(1) : ir::make_const_i32(1);
    if (!sym->is_global) {
      ExprPtr next = ir::make_bin(inc ? BinOp::Add : BinOp::Sub, ty,
                                  ir::make_reg(ty, sym->index), std::move(one));
      if (sym->type.k == CType::K::U8) {
        next = ir::make_bin(BinOp::And, Ty::I32, std::move(next), ir::make_const_i32(0xff));
      }
      emit(ir::make_assign(sym->index, std::move(next)));
    } else {
      const MemTy mem = to_mem(sym->type);
      ExprPtr next = ir::make_bin(inc ? BinOp::Add : BinOp::Sub, ty,
                                  ir::make_load(mem, ir::make_global_addr(sym->index)),
                                  std::move(one));
      emit(ir::make_store(mem, ir::make_global_addr(sym->index), std::move(next)));
    }
    return true;
  }

  void parse_local_decl() {
    auto type = parse_type();
    if (!ok_ || !type) return;
    do {
      if (peek().kind != TK::Ident) {
        fail("expected variable name");
        return;
      }
      const std::string name = advance().text;
      std::vector<uint32_t> dims;
      while (match_punct("[")) {
        const auto n = parse_const_int();
        if (!ok_) return;
        dims.push_back(static_cast<uint32_t>(*n));
        expect_punct("]");
      }
      Sym sym;
      sym.type = *type;
      if (dims.empty()) {
        sym.is_global = false;
        sym.index = new_reg(to_ir(*type));
        if (match_punct("=")) {
          Operand v = parse_assignment();
          if (!ok_) return;
          emit(ir::make_assign(sym.index, to_value(std::move(v), *type)));
        }
      } else {
        // Local arrays become module statics (kernels initialize them
        // before use; recursion with local arrays is outside the subset).
        ir::GlobalVar g;
        g.name = fn().name + "$" + name;
        g.elem = to_mem(*type);
        g.count = 1;
        for (uint32_t d : dims) g.count *= d;
        if (match_punct("=")) parse_initializer(*type, g.init, g.count);
        g.dynamic_alloc = g.init.empty() &&
                          g.byte_size() >= options_.dynamic_alloc_threshold;
        sym.is_global = true;
        sym.index = static_cast<uint32_t>(module_.globals.size());
        sym.dims = dims;
        module_.globals.push_back(std::move(g));
      }
      scopes_.back()[name] = std::move(sym);
    } while (ok_ && match_punct(","));
    expect_punct(";");
  }

  /// Builds `if (!cond) break;`.
  StmtPtr make_exit_unless(ExprPtr cond) {
    auto exit_if = std::make_unique<Stmt>();
    exit_if->kind = Stmt::Kind::If;
    exit_if->e0 = ir::make_un(UnOp::LNot, Ty::I32, std::move(cond));
    auto brk = std::make_unique<Stmt>();
    brk->kind = Stmt::Kind::Break;
    exit_if->body.push_back(std::move(brk));
    return exit_if;
  }

  void parse_for() {
    expect_punct("(");
    scopes_.emplace_back();
    if (!peek_punct(";")) {
      if (peek_type()) {
        parse_local_decl();  // consumes ';'
      } else {
        parse_expression_as_stmt();
        expect_punct(";");
      }
    } else {
      expect_punct(";");
    }
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::While;
    std::vector<StmtPtr> cond_stmts;
    if (peek_punct(";")) {
      s->e0 = ir::make_const_i32(1);
    } else {
      emit_stack_.push_back(&cond_stmts);
      ExprPtr cond = parse_condition();
      emit_stack_.pop_back();
      if (cond_stmts.empty()) {
        s->e0 = std::move(cond);
      } else {
        // Complex condition: re-evaluate it at the top of every iteration.
        s->e0 = ir::make_const_i32(1);
        for (auto& cs : cond_stmts) s->body.push_back(std::move(cs));
        s->body.push_back(make_exit_unless(std::move(cond)));
      }
    }
    expect_punct(";");

    // Parse the update clause into a pending list (emitted at body end).
    std::vector<StmtPtr> update;
    if (!peek_punct(")")) {
      emit_stack_.push_back(&update);
      parse_expression_as_stmt();
      emit_stack_.pop_back();
    }
    expect_punct(")");

    std::vector<StmtPtr> body;
    emit_stack_.push_back(&body);
    parse_statement();
    emit_stack_.pop_back();
    scopes_.pop_back();
    if (!ok_) return;

    if (contains_loop_level_continue(body)) {
      // continue must reach the update clause: wrap the body in a
      // do{...}while(0) where continue==break(inner), and route for-level
      // breaks through a flag.
      const uint32_t brk = new_reg(Ty::I32);
      rewrite_for_breaks(body, brk);
      s->body.push_back(ir::make_assign(brk, ir::make_const_i32(0)));
      auto inner = std::make_unique<Stmt>();
      inner->kind = Stmt::Kind::DoWhile;
      inner->e0 = ir::make_const_i32(0);
      inner->body = std::move(body);
      s->body.push_back(std::move(inner));
      auto brk_if = std::make_unique<Stmt>();
      brk_if->kind = Stmt::Kind::If;
      brk_if->e0 = ir::make_reg(Ty::I32, brk);
      auto break_stmt = std::make_unique<Stmt>();
      break_stmt->kind = Stmt::Kind::Break;
      brk_if->body.push_back(std::move(break_stmt));
      s->body.push_back(std::move(brk_if));
    } else {
      for (auto& b : body) s->body.push_back(std::move(b));
    }
    for (auto& u : update) s->body.push_back(std::move(u));
    emit(std::move(s));
  }

  static bool contains_loop_level_continue(const std::vector<StmtPtr>& body) {
    for (const auto& s : body) {
      if (s->kind == Stmt::Kind::Continue) return true;
      if (s->kind == Stmt::Kind::While || s->kind == Stmt::Kind::DoWhile) continue;
      if (contains_loop_level_continue(s->body)) return true;
      if (contains_loop_level_continue(s->else_body)) return true;
    }
    return false;
  }

  /// Replaces for-level breaks with {flag=1; break;} (the break then
  /// exits the do-while wrapper and the flag exits the loop).
  static void rewrite_for_breaks(std::vector<StmtPtr>& body, uint32_t flag) {
    for (size_t i = 0; i < body.size(); ++i) {
      Stmt& s = *body[i];
      if (s.kind == Stmt::Kind::Break) {
        body.insert(body.begin() + static_cast<ptrdiff_t>(i),
                    ir::make_assign(flag, ir::make_const_i32(1)));
        ++i;
        continue;
      }
      if (s.kind == Stmt::Kind::While || s.kind == Stmt::Kind::DoWhile) continue;
      rewrite_for_breaks(s.body, flag);
      rewrite_for_breaks(s.else_body, flag);
    }
  }

  void parse_expression_as_stmt() {
    while (ok_) {
      if (!try_parse_simple_incdec_stmt()) {
        Operand v = parse_assignment(/*need_value=*/false);
        if (!ok_) return;
        drop(std::move(v));
      }
      if (!match_punct(",")) break;
    }
  }

  void parse_switch() {
    expect_punct("(");
    Operand scrutinee = parse_expression();
    expect_punct(")");
    if (!ok_) return;
    const uint32_t sel = new_reg(Ty::I32);
    emit(ir::make_assign(sel, to_value(std::move(scrutinee), CType{CType::K::I32})));
    expect_punct("{");

    struct Case {
      std::vector<int64_t> labels;  // empty = default
      std::vector<StmtPtr> body;
      bool is_default = false;
    };
    std::vector<Case> cases;
    while (ok_ && !peek_punct("}") && !at_end()) {
      Case c;
      bool saw_label = false;
      while (true) {
        if (match_ident("case")) {
          const auto v = parse_const_int();
          if (!ok_) return;
          c.labels.push_back(*v);
          expect_punct(":");
          saw_label = true;
        } else if (match_ident("default")) {
          expect_punct(":");
          c.is_default = true;
          saw_label = true;
        } else {
          break;
        }
      }
      if (!saw_label) {
        fail("expected case label");
        return;
      }
      emit_stack_.push_back(&c.body);
      while (ok_ && !peek_punct("}") && !peek_ident("case") && !peek_ident("default")) {
        parse_statement();
      }
      emit_stack_.pop_back();
      if (!ok_) return;
      // The trailing top-level break terminates the case (no fallthrough
      // in the subset).
      if (!c.body.empty() && c.body.back()->kind == Stmt::Kind::Break) {
        c.body.pop_back();
      } else if (!c.body.empty() && c.body.back()->kind != Stmt::Kind::Return) {
        fail("switch cases must end with break or return (no fallthrough)");
        return;
      }
      cases.push_back(std::move(c));
    }
    expect_punct("}");

    // Build the if/else chain (default last).
    std::vector<StmtPtr>* chain_sink = &sink();
    std::vector<Case*> ordered;
    Case* default_case = nullptr;
    for (auto& c : cases) {
      if (c.is_default && c.labels.empty()) {
        default_case = &c;
      } else {
        ordered.push_back(&c);
      }
    }
    StmtPtr chain;
    Stmt* tail = nullptr;
    for (Case* c : ordered) {
      ExprPtr cond;
      for (int64_t label : c->labels) {
        ExprPtr test = ir::make_bin(BinOp::Eq, Ty::I32, ir::make_reg(Ty::I32, sel),
                                    ir::make_const_i32(static_cast<int32_t>(label)));
        cond = cond ? ir::make_bin(BinOp::Or, Ty::I32, std::move(cond), std::move(test))
                    : std::move(test);
      }
      auto node = std::make_unique<Stmt>();
      node->kind = Stmt::Kind::If;
      node->e0 = std::move(cond);
      node->body = std::move(c->body);
      Stmt* raw = node.get();
      if (!tail) {
        chain = std::move(node);
      } else {
        tail->else_body.push_back(std::move(node));
      }
      tail = raw;
    }
    if (default_case) {
      if (tail) {
        tail->else_body = std::move(default_case->body);
      } else {
        for (auto& s : default_case->body) chain_sink->push_back(std::move(s));
        return;
      }
    }
    if (chain) chain_sink->push_back(std::move(chain));
  }

  // -------------------------------------------------------- expressions

  ExprPtr parse_condition() {
    Operand v = parse_expression();
    if (!ok_) return ir::make_const_i32(0);
    return to_truth(std::move(v));
  }

  /// Converts an operand to an i32 truth value.
  ExprPtr to_truth(Operand v) {
    CType t = v.type;
    ExprPtr e = to_value(std::move(v), t);
    if (is_float_t(t)) {
      return ir::make_bin(BinOp::Ne, Ty::F64, std::move(e), ir::make_const_f64(0));
    }
    return e;  // nonzero i32 is true
  }

  Operand parse_expression(bool need_value = true) {
    Operand v = parse_assignment(need_value && !peek_punct(","));
    while (ok_ && peek_punct(",")) {
      advance();
      drop(std::move(v));
      const bool last = !peek_punct(",", 1);
      v = parse_assignment(need_value && last);
    }
    return v;
  }

  void drop(Operand v) {
    if (v.kind == Operand::K::Value && v.value &&
        (v.value->kind == Expr::Kind::Call ||
         v.value->kind == Expr::Kind::IntrinsicCall)) {
      auto s = std::make_unique<Stmt>();
      s->kind = Stmt::Kind::ExprStmt;
      s->e0 = std::move(v.value);
      emit(std::move(s));
    }
  }

  Operand parse_assignment(bool need_value = true) {
    Operand lhs = parse_ternary();
    static constexpr std::string_view kOps[] = {"=",  "+=", "-=", "*=", "/=", "%=",
                                                "&=", "|=", "^=", "<<=", ">>="};
    for (std::string_view op : kOps) {
      if (!peek_punct(op)) continue;
      advance();
      Operand rhs_op = parse_assignment();
      if (!ok_) return value_operand(ir::make_const_i32(0), CType{CType::K::I32});
      const CType lt = lhs.type;
      ExprPtr rhs;
      if (op == "=") {
        rhs = to_value(std::move(rhs_op), lt);
      } else {
        const std::string binop(op.substr(0, op.size() - 1));
        Operand cur = read_copy(lhs);
        rhs = lower_binary(binop, std::move(cur), std::move(rhs_op), lt);
      }
      if (!ok_) return value_operand(ir::make_const_i32(0), CType{CType::K::I32});
      if (!need_value) {
        // Statement position: store the value directly (this keeps loop
        // increments in the `i = i + 1` shape the unroll pass matches).
        store_into(lhs, std::move(rhs));
        return value_operand(ir::make_const_i32(0), CType{CType::K::I32});
      }
      // Materialize the stored value in a register so the expression
      // result does not re-read the location.
      const uint32_t tmp = new_reg(to_ir(lt));
      emit(ir::make_assign(tmp, std::move(rhs)));
      store_into(lhs, ir::make_reg(to_ir(lt), tmp));
      return value_operand(ir::make_reg(to_ir(lt), tmp), lt);
    }
    return lhs;
  }

  /// Lowers `a op b` after usual arithmetic conversions; `force` fixes the
  /// result type for compound assignment.
  ExprPtr lower_binary(const std::string& op, Operand a, Operand b,
                       std::optional<CType> force = std::nullopt) {
    const CType at = a.type;
    const CType bt = b.type;
    CType common = usual_arith(at, bt);
    if (force) common = *force;
    const bool uns = is_unsigned_t(common) ||
                     (is_unsigned_t(at) && is_unsigned_t(bt));
    ExprPtr ea = to_value(std::move(a), common);
    ExprPtr eb = to_value(std::move(b), common);
    const Ty ty = to_ir(common);

    BinOp bop;
    if (op == "+") bop = BinOp::Add;
    else if (op == "-") bop = BinOp::Sub;
    else if (op == "*") bop = BinOp::Mul;
    else if (op == "/") bop = is_float_t(common) ? BinOp::DivS : (uns ? BinOp::DivU : BinOp::DivS);
    else if (op == "%") bop = uns ? BinOp::RemU : BinOp::RemS;
    else if (op == "&") bop = BinOp::And;
    else if (op == "|") bop = BinOp::Or;
    else if (op == "^") bop = BinOp::Xor;
    else if (op == "<<") bop = BinOp::Shl;
    else if (op == ">>") bop = uns ? BinOp::ShrU : BinOp::ShrS;
    else {
      fail("bad binary operator " + op);
      return ir::make_const_i32(0);
    }
    if (is_float_t(common) &&
        (bop == BinOp::RemS || bop == BinOp::RemU || bop == BinOp::And ||
         bop == BinOp::Or || bop == BinOp::Xor || bop == BinOp::Shl ||
         bop == BinOp::ShrS || bop == BinOp::ShrU)) {
      fail("operator " + op + " requires integer operands");
      return ir::make_const_i32(0);
    }
    ExprPtr result = ir::make_bin(bop, ty, std::move(ea), std::move(eb));
    if (force && force->k == CType::K::U8) {
      // Compound assignment to a char keeps the value in byte range.
      result = ir::make_bin(BinOp::And, Ty::I32, std::move(result),
                            ir::make_const_i32(0xff));
    }
    return result;
  }

  Operand parse_ternary() {
    Operand cond = parse_logical_or();
    if (!peek_punct("?")) return cond;
    advance();
    ExprPtr c = to_truth(std::move(cond));

    std::vector<StmtPtr> then_stmts, else_stmts;
    emit_stack_.push_back(&then_stmts);
    Operand a = parse_assignment();
    emit_stack_.pop_back();
    expect_punct(":");
    emit_stack_.push_back(&else_stmts);
    Operand b = parse_assignment();
    emit_stack_.pop_back();
    if (!ok_) return value_operand(ir::make_const_i32(0), CType{CType::K::I32});

    const CType rt = usual_arith(a.type, b.type);
    const uint32_t tmp = new_reg(to_ir(rt));
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::If;
    s->e0 = std::move(c);
    s->body = std::move(then_stmts);
    s->body.push_back(ir::make_assign(tmp, to_value(std::move(a), rt)));
    s->else_body = std::move(else_stmts);
    s->else_body.push_back(ir::make_assign(tmp, to_value(std::move(b), rt)));
    emit(std::move(s));
    return value_operand(ir::make_reg(to_ir(rt), tmp), rt);
  }

  Operand parse_logical_or() {
    Operand a = parse_logical_and();
    while (ok_ && peek_punct("||")) {
      advance();
      const uint32_t tmp = new_reg(Ty::I32);
      emit(ir::make_assign(tmp, to_truth(std::move(a))));
      std::vector<StmtPtr> rhs_stmts;
      emit_stack_.push_back(&rhs_stmts);
      Operand b = parse_logical_and();
      ExprPtr bt = to_truth(std::move(b));
      emit_stack_.pop_back();
      auto s = std::make_unique<Stmt>();
      s->kind = Stmt::Kind::If;
      s->e0 = ir::make_un(UnOp::LNot, Ty::I32, ir::make_reg(Ty::I32, tmp));
      s->body = std::move(rhs_stmts);
      // Normalize to 0/1.
      s->body.push_back(ir::make_assign(
          tmp, ir::make_bin(BinOp::Ne, Ty::I32, std::move(bt), ir::make_const_i32(0))));
      emit(std::move(s));
      a = value_operand(ir::make_reg(Ty::I32, tmp), CType{CType::K::I32});
    }
    return a;
  }

  Operand parse_logical_and() {
    Operand a = parse_bit_or();
    while (ok_ && peek_punct("&&")) {
      advance();
      const uint32_t tmp = new_reg(Ty::I32);
      emit(ir::make_assign(
          tmp, ir::make_bin(BinOp::Ne, Ty::I32, to_truth(std::move(a)),
                            ir::make_const_i32(0))));
      std::vector<StmtPtr> rhs_stmts;
      emit_stack_.push_back(&rhs_stmts);
      Operand b = parse_bit_or();
      ExprPtr bt = to_truth(std::move(b));
      emit_stack_.pop_back();
      auto s = std::make_unique<Stmt>();
      s->kind = Stmt::Kind::If;
      s->e0 = ir::make_reg(Ty::I32, tmp);
      s->body = std::move(rhs_stmts);
      s->body.push_back(ir::make_assign(
          tmp, ir::make_bin(BinOp::Ne, Ty::I32, std::move(bt), ir::make_const_i32(0))));
      emit(std::move(s));
      a = value_operand(ir::make_reg(Ty::I32, tmp), CType{CType::K::I32});
    }
    return a;
  }

#define WB_BIN_LEVEL(NAME, NEXT, COND_BODY)                         \
  Operand NAME() {                                                  \
    Operand a = NEXT();                                             \
    while (ok_) {                                                   \
      std::string op;                                               \
      COND_BODY                                                     \
      if (op.empty()) break;                                        \
      advance();                                                    \
      Operand b = NEXT();                                           \
      a = lower_binary_operand(op, std::move(a), std::move(b));     \
    }                                                               \
    return a;                                                       \
  }

  WB_BIN_LEVEL(parse_bit_or, parse_bit_xor, { if (peek_punct("|")) op = "|"; })
  WB_BIN_LEVEL(parse_bit_xor, parse_bit_and, { if (peek_punct("^")) op = "^"; })
  WB_BIN_LEVEL(parse_bit_and, parse_equality, { if (peek_punct("&")) op = "&"; })
  WB_BIN_LEVEL(parse_equality, parse_relational, {
    if (peek_punct("==")) op = "==";
    else if (peek_punct("!=")) op = "!=";
  })
  WB_BIN_LEVEL(parse_relational, parse_shift, {
    if (peek_punct("<=")) op = "<=";
    else if (peek_punct(">=")) op = ">=";
    else if (peek_punct("<")) op = "<";
    else if (peek_punct(">")) op = ">";
  })
  WB_BIN_LEVEL(parse_shift, parse_additive, {
    if (peek_punct("<<")) op = "<<";
    else if (peek_punct(">>")) op = ">>";
  })
  WB_BIN_LEVEL(parse_additive, parse_multiplicative, {
    if (peek_punct("+")) op = "+";
    else if (peek_punct("-")) op = "-";
  })
  WB_BIN_LEVEL(parse_multiplicative, parse_unary_operand, {
    if (peek_punct("*")) op = "*";
    else if (peek_punct("/")) op = "/";
    else if (peek_punct("%")) op = "%";
  })
#undef WB_BIN_LEVEL

  Operand lower_binary_operand(const std::string& op, Operand a, Operand b) {
    if (op == "==" || op == "!=" || op == "<" || op == "<=" || op == ">" ||
        op == ">=") {
      const CType common = usual_arith(a.type, b.type);
      const bool uns = is_unsigned_t(common);
      const Ty ty = to_ir(common);
      ExprPtr ea = to_value(std::move(a), common);
      ExprPtr eb = to_value(std::move(b), common);
      BinOp bop;
      if (op == "==") bop = BinOp::Eq;
      else if (op == "!=") bop = BinOp::Ne;
      else if (op == "<") bop = uns && !is_float_t(common) ? BinOp::LtU : BinOp::LtS;
      else if (op == "<=") bop = uns && !is_float_t(common) ? BinOp::LeU : BinOp::LeS;
      else if (op == ">") bop = uns && !is_float_t(common) ? BinOp::GtU : BinOp::GtS;
      else bop = uns && !is_float_t(common) ? BinOp::GeU : BinOp::GeS;
      return value_operand(ir::make_bin(bop, ty, std::move(ea), std::move(eb)),
                           CType{CType::K::I32});
    }
    const CType common = usual_arith(a.type, b.type);
    return value_operand(lower_binary(op, std::move(a), std::move(b)), common);
  }

  Operand parse_unary_operand() {
    if (match_punct("-")) {
      Operand v = parse_unary_operand();
      CType t = v.type;
      if (t.k == CType::K::U8) t = CType{CType::K::I32};
      return value_operand(
          ir::make_un(UnOp::Neg, to_ir(t), to_value(std::move(v), t)), t);
    }
    if (match_punct("+")) return parse_unary_operand();
    if (match_punct("!")) {
      Operand v = parse_unary_operand();
      return value_operand(ir::make_un(UnOp::LNot, Ty::I32, to_truth(std::move(v))),
                           CType{CType::K::I32});
    }
    if (match_punct("~")) {
      Operand v = parse_unary_operand();
      CType t = v.type;
      if (is_float_t(t)) {
        fail("~ requires an integer operand");
        return value_operand(ir::make_const_i32(0), CType{CType::K::I32});
      }
      if (t.k == CType::K::U8) t = CType{CType::K::I32};
      return value_operand(
          ir::make_un(UnOp::BitNot, Ty::I32, to_value(std::move(v), t)), t);
    }
    if (peek_punct("++") || peek_punct("--")) {
      const bool inc = advance().text == "++";
      Operand target = parse_unary_operand();
      return lower_incdec(std::move(target), inc, /*prefix=*/true);
    }
    // Cast: '(' type ')' unary.
    if (peek_punct("(") && peek(1).kind == TK::Ident &&
        (peek(1).text == "int" || peek(1).text == "unsigned" ||
         peek(1).text == "double" || peek(1).text == "char" ||
         peek(1).text == "signed")) {
      advance();  // '('
      auto type = parse_type();
      expect_punct(")");
      if (!ok_ || !type) return value_operand(ir::make_const_i32(0), CType{CType::K::I32});
      Operand v = parse_unary_operand();
      return value_operand(to_value(std::move(v), *type), *type);
    }
    return parse_postfix();
  }

  Operand lower_incdec(Operand target, bool inc, bool prefix) {
    const CType t = target.type;
    if (t.k == CType::K::Void) {
      fail("cannot increment this expression");
      return value_operand(ir::make_const_i32(0), CType{CType::K::I32});
    }
    Operand cur = read_copy(target);
    ExprPtr one = is_float_t(t) ? ir::make_const_f64(1) : ir::make_const_i32(1);
    const uint32_t old_reg = new_reg(to_ir(t));
    emit(ir::make_assign(old_reg, to_value(std::move(cur), t)));
    ExprPtr next = ir::make_bin(inc ? BinOp::Add : BinOp::Sub, to_ir(t),
                                ir::make_reg(to_ir(t), old_reg), std::move(one));
    if (t.k == CType::K::U8) {
      next = ir::make_bin(BinOp::And, Ty::I32, std::move(next), ir::make_const_i32(0xff));
    }
    const uint32_t new_val = new_reg(to_ir(t));
    emit(ir::make_assign(new_val, std::move(next)));
    store_into(target, ir::make_reg(to_ir(t), new_val));
    return value_operand(ir::make_reg(to_ir(t), prefix ? new_val : old_reg), t);
  }

  Operand parse_postfix() {
    Operand v = parse_primary();
    while (ok_) {
      if (peek_punct("++") || peek_punct("--")) {
        const bool inc = advance().text == "++";
        v = lower_incdec(std::move(v), inc, /*prefix=*/false);
        continue;
      }
      break;
    }
    return v;
  }

  Operand parse_primary() {
    const Tok& t = peek();
    if (t.kind == TK::Int) {
      advance();
      if (t.ival > 0x7fffffffull) {
        return value_operand(ir::make_const_i32(static_cast<int32_t>(t.ival)),
                             CType{CType::K::U32});
      }
      return value_operand(ir::make_const_i32(static_cast<int32_t>(t.ival)),
                           CType{CType::K::I32});
    }
    if (t.kind == TK::Float) {
      advance();
      return value_operand(ir::make_const_f64(t.fval), CType{CType::K::F64});
    }
    if (t.kind == TK::Punct && t.text == "(") {
      advance();
      Operand v = parse_expression();
      expect_punct(")");
      return v;
    }
    if (t.kind != TK::Ident) {
      fail("unexpected token '" + t.text + "'");
      advance();
      return value_operand(ir::make_const_i32(0), CType{CType::K::I32});
    }

    const std::string name = advance().text;

    // Intrinsic or function call.
    if (peek_punct("(")) return parse_call(name);

    // Variable.
    const Sym* sym = lookup(name);
    if (!sym) {
      fail("use of undeclared identifier '" + name + "'");
      return value_operand(ir::make_const_i32(0), CType{CType::K::I32});
    }
    if (sym->dims.empty()) {
      Operand out;
      if (sym->is_global) {
        out.kind = Operand::K::MemRef;
        out.addr = ir::make_global_addr(sym->index);
        out.mem = to_mem(sym->type);
      } else {
        out.kind = Operand::K::ScalarVar;
        out.sym = *sym;
      }
      out.type = sym->type;
      return out;
    }
    // Array: expect full indexing A[i][j]...
    if (!peek_punct("[")) {
      fail("array '" + name + "' must be fully indexed (pointers are outside the subset)");
      return value_operand(ir::make_const_i32(0), CType{CType::K::I32});
    }
    ExprPtr index;  // element index
    for (size_t d = 0; d < sym->dims.size(); ++d) {
      if (!match_punct("[")) {
        fail("array '" + name + "' must be fully indexed");
        return value_operand(ir::make_const_i32(0), CType{CType::K::I32});
      }
      Operand iv = parse_expression();
      expect_punct("]");
      if (!ok_) return value_operand(ir::make_const_i32(0), CType{CType::K::I32});
      ExprPtr ie = to_value(std::move(iv), CType{CType::K::I32});
      if (!index) {
        index = std::move(ie);
      } else {
        index = ir::make_bin(
            BinOp::Add, Ty::I32,
            ir::make_bin(BinOp::Mul, Ty::I32, std::move(index),
                         ir::make_const_i32(static_cast<int32_t>(sym->dims[d]))),
            std::move(ie));
      }
    }
    const uint32_t esz = static_cast<uint32_t>(ir::mem_size(to_mem(sym->type)));
    ExprPtr byte_off =
        esz == 1 ? std::move(index)
                 : ir::make_bin(BinOp::Mul, Ty::I32, std::move(index),
                                ir::make_const_i32(static_cast<int32_t>(esz)));
    Operand out;
    out.kind = Operand::K::MemRef;
    out.addr = ir::make_bin(BinOp::Add, Ty::I32, ir::make_global_addr(sym->index),
                            std::move(byte_off));
    out.mem = to_mem(sym->type);
    out.type = sym->type;
    return out;
  }

  Operand parse_call(const std::string& name) {
    expect_punct("(");
    std::vector<Operand> args;
    if (!peek_punct(")")) {
      do {
        args.push_back(parse_assignment());
      } while (ok_ && match_punct(","));
    }
    expect_punct(")");
    if (!ok_) return value_operand(ir::make_const_i32(0), CType{CType::K::I32});

    static const std::unordered_map<std::string, Intrinsic> kIntrinsics = {
        {"sqrt", Intrinsic::Sqrt}, {"fabs", Intrinsic::Fabs},
        {"floor", Intrinsic::Floor}, {"ceil", Intrinsic::Ceil},
        {"pow", Intrinsic::Pow},   {"exp", Intrinsic::Exp},
        {"log", Intrinsic::Log},   {"sin", Intrinsic::Sin},
        {"cos", Intrinsic::Cos}};
    const auto intr = kIntrinsics.find(name);
    if (intr != kIntrinsics.end()) {
      const size_t want = intr->second == Intrinsic::Pow ? 2 : 1;
      if (args.size() != want) {
        fail(name + " expects " + std::to_string(want) + " argument(s)");
        return value_operand(ir::make_const_i32(0), CType{CType::K::I32});
      }
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::IntrinsicCall;
      e->ty = Ty::F64;
      e->intrinsic = intr->second;
      for (auto& a : args) e->args.push_back(to_value(std::move(a), CType{CType::K::F64}));
      return value_operand(std::move(e), CType{CType::K::F64});
    }

    const auto it = functions_.find(name);
    if (it == functions_.end()) {
      fail("call to undeclared function '" + name + "'");
      return value_operand(ir::make_const_i32(0), CType{CType::K::I32});
    }
    const FuncSig& sig = it->second;
    if (args.size() != sig.params.size()) {
      fail("wrong number of arguments to " + name);
      return value_operand(ir::make_const_i32(0), CType{CType::K::I32});
    }
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::Call;
    e->ty = to_ir(sig.ret);
    e->func = sig.index;
    for (size_t i = 0; i < args.size(); ++i) {
      e->args.push_back(to_value(std::move(args[i]), sig.params[i]));
    }
    return value_operand(std::move(e), sig.ret);
  }

  // --------------------------------------------------- operand plumbing
  static Operand value_operand(ExprPtr e, CType t) {
    Operand v;
    v.kind = Operand::K::Value;
    v.value = std::move(e);
    v.type = t;
    return v;
  }

  const Sym* lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const auto found = it->find(name);
      if (found != it->end()) return &found->second;
    }
    const auto g = globals_.find(name);
    return g == globals_.end() ? nullptr : &g->second;
  }

  /// Reads an operand, leaving it usable for a later store (clones the
  /// address for mem refs).
  Operand read_copy(const Operand& src) {
    Operand out;
    out.type = src.type;
    out.kind = Operand::K::Value;
    switch (src.kind) {
      case Operand::K::Value:
        fail("expression is not assignable");
        out.value = ir::make_const_i32(0);
        break;
      case Operand::K::ScalarVar:
        out.value = ir::make_reg(to_ir(src.type), src.sym.index);
        break;
      case Operand::K::MemRef:
        out.value = ir::make_load(src.mem, src.addr->clone());
        break;
    }
    return out;
  }

  /// Converts an operand into an expression of type `want`.
  ExprPtr to_value(Operand v, CType want) {
    ExprPtr e;
    CType from = v.type;
    switch (v.kind) {
      case Operand::K::Value:
        e = std::move(v.value);
        break;
      case Operand::K::ScalarVar:
        e = ir::make_reg(to_ir(v.type), v.sym.index);
        break;
      case Operand::K::MemRef:
        e = ir::make_load(v.mem, std::move(v.addr));
        break;
    }
    return convert(std::move(e), from, want);
  }

  ExprPtr convert(ExprPtr e, CType from, CType to) {
    if (from == to || to.k == CType::K::Void) return e;
    const bool from_f = is_float_t(from);
    const bool to_f = is_float_t(to);
    if (!from_f && !to_f) {
      // Integer conversions: only narrowing to U8 changes the value.
      if (to.k == CType::K::U8) {
        return ir::make_bin(BinOp::And, Ty::I32, std::move(e), ir::make_const_i32(0xff));
      }
      return e;
    }
    if (!from_f && to_f) {
      return ir::make_cast(
          is_unsigned_t(from) ? CastOp::I32ToF64U : CastOp::I32ToF64S, std::move(e));
    }
    if (from_f && !to_f) {
      ExprPtr r = ir::make_cast(CastOp::F64ToI32S, std::move(e));
      if (to.k == CType::K::U8) {
        r = ir::make_bin(BinOp::And, Ty::I32, std::move(r), ir::make_const_i32(0xff));
      }
      return r;
    }
    return e;
  }

  void store_into(Operand& lhs, ExprPtr value) {
    switch (lhs.kind) {
      case Operand::K::Value:
        fail("expression is not assignable");
        break;
      case Operand::K::ScalarVar: {
        ExprPtr v = std::move(value);
        if (lhs.type.k == CType::K::U8) {
          v = ir::make_bin(BinOp::And, Ty::I32, std::move(v), ir::make_const_i32(0xff));
        }
        emit(ir::make_assign(lhs.sym.index, std::move(v)));
        break;
      }
      case Operand::K::MemRef:
        emit(ir::make_store(lhs.mem, lhs.addr->clone(), std::move(value)));
        break;
    }
  }

  static CType usual_arith(CType a, CType b) {
    if (a.k == CType::K::F64 || b.k == CType::K::F64) return CType{CType::K::F64};
    if (a.k == CType::K::U32 || b.k == CType::K::U32) return CType{CType::K::U32};
    return CType{CType::K::I32};  // U8 promotes to int
  }

  std::vector<Tok> toks_;
  const CompileOptions& options_;
  std::string& error_;
  size_t pos_ = 0;
  bool ok_ = true;

  ir::Module module_;
  std::unordered_map<std::string, Sym> globals_;
  std::map<std::string, FuncSig> functions_;
  std::vector<std::unordered_map<std::string, Sym>> scopes_;
  std::vector<std::vector<StmtPtr>*> emit_stack_;
  uint32_t current_fn_ = UINT32_MAX;
  CType current_ret_;
};

void Parser::fold(ExprPtr& e) {
  for (auto& a : e->args) fold(a);
  if (e->kind == Expr::Kind::Bin && e->args[0]->kind == Expr::Kind::Const &&
      e->args[1]->kind == Expr::Kind::Const) {
    // Reuse the pass-level folder by building a tiny module? Simpler:
    // handle the integer ops initializers actually use.
    const uint64_t a = e->args[0]->imm;
    const uint64_t b = e->args[1]->imm;
    if (e->ty == Ty::I32) {
      const int32_t sa = static_cast<int32_t>(a);
      const int32_t sb = static_cast<int32_t>(b);
      int64_t r;
      switch (e->bin) {
        case BinOp::Add: r = sa + sb; break;
        case BinOp::Sub: r = sa - sb; break;
        case BinOp::Mul: r = static_cast<int32_t>(sa * sb); break;
        case BinOp::DivS: if (sb == 0) return; r = sa / sb; break;
        case BinOp::RemS: if (sb == 0) return; r = sa % sb; break;
        case BinOp::Shl: r = sa << (sb & 31); break;
        case BinOp::ShrS: r = sa >> (sb & 31); break;
        case BinOp::And: r = sa & sb; break;
        case BinOp::Or: r = sa | sb; break;
        case BinOp::Xor: r = sa ^ sb; break;
        default: return;
      }
      e = ir::make_const_i32(static_cast<int32_t>(r));
      return;
    }
    if (e->ty == Ty::F64) {
      double x, y;
      std::memcpy(&x, &a, 8);
      std::memcpy(&y, &b, 8);
      double r;
      switch (e->bin) {
        case BinOp::Add: r = x + y; break;
        case BinOp::Sub: r = x - y; break;
        case BinOp::Mul: r = x * y; break;
        case BinOp::DivS: r = x / y; break;
        default: return;
      }
      e = ir::make_const_f64(r);
      return;
    }
    return;
  }
  if (e->kind == Expr::Kind::Un && e->args[0]->kind == Expr::Kind::Const) {
    if (e->un == UnOp::Neg) {
      if (e->ty == Ty::I32) {
        e = ir::make_const_i32(-static_cast<int32_t>(e->args[0]->imm));
      } else if (e->ty == Ty::F64) {
        double x;
        const uint64_t bits = e->args[0]->imm;
        std::memcpy(&x, &bits, 8);
        e = ir::make_const_f64(-x);
      }
    }
    return;
  }
  if (e->kind == Expr::Kind::Cast && e->args[0]->kind == Expr::Kind::Const) {
    if (e->cast == CastOp::I32ToF64S) {
      e = ir::make_const_f64(static_cast<double>(static_cast<int32_t>(e->args[0]->imm)));
    } else if (e->cast == CastOp::I32ToF64U) {
      e = ir::make_const_f64(static_cast<double>(static_cast<uint32_t>(e->args[0]->imm)));
    }
  }
}

}  // namespace

std::optional<ir::Module> compile(std::string_view source, const CompileOptions& options,
                                  std::string& error) {
  Lexer lexer(source, error);
  std::vector<Tok> toks;
  if (!lexer.run(options.defines, toks)) return std::nullopt;
  Parser parser(std::move(toks), options, error);
  return parser.run();
}

}  // namespace wb::minic
