// The C-subset frontend ("mini-C"). Compiles the benchmark sources —
// rewrites of the 41 PolyBenchC/CHStone kernels — into the mid-level IR.
//
// Supported subset (everything the kernels need, nothing more):
//  - types: void, unsigned char, int, unsigned (int), double
//    (64-bit integers are not part of the subset; the CHStone soft-float
//    kernels are expressed as 32-bit pairs, which is also how Cheerp
//    legalizes i64 for its JavaScript target)
//  - global scalars and multi-dimensional arrays (with initializers);
//    local scalars; local arrays (lowered to module statics)
//  - functions (definitions and prototypes; declare-before-use)
//  - statements: if/else, for, while, do-while, switch (break-terminated
//    cases), return, break, continue, blocks, expression statements
//  - full C expression set: assignment (incl. compound), ternary,
//    logical short-circuit, bitwise, shifts, comparisons, arithmetic,
//    casts, ++/-- on scalars, calls
//  - math intrinsics: sqrt fabs floor ceil pow exp log sin cos
//  - object-like #define macros plus harness-injected -D style defines
//    (how benchmark input sizes XS..XL are selected, as in PolyBench)
//
// Not supported (documented substitutions in DESIGN.md): pointers,
// structs/unions, 64-bit integer types, the preprocessor beyond #define.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ir/ir.h"

namespace wb::minic {

struct CompileOptions {
  /// -DNAME=VALUE equivalents, applied before source #defines.
  std::vector<std::pair<std::string, std::string>> defines;
  /// Arrays at least this large (bytes) without initializers are marked
  /// dynamic_alloc (bump-allocated by the toolchain runtime at startup).
  size_t dynamic_alloc_threshold = 1024;
};

/// Compiles mini-C to IR. Returns nullopt and sets `error` on failure.
std::optional<ir::Module> compile(std::string_view source, const CompileOptions& options,
                                  std::string& error);

}  // namespace wb::minic
