// The execution-environment model: browser/platform profiles and the
// "page" that loads and measures a Wasm or JS program, standing in for
// the paper's six deployment settings (Chrome/Firefox/Edge on desktop and
// mobile, Sec. 4.5) and its DevTools-based data collection (Sec. 3.4).
//
// All time is virtual (picoseconds accumulated from per-op cost tables),
// so every measurement is deterministic. The cost-model constants live in
// env.cpp with notes on which paper observation each one encodes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "attr/cause.h"
#include "backend/wasm_backend.h"
#include "js/interp.h"
#include "wasm/interp.h"

namespace wb::prof {
class Tracer;
}
namespace wb::replay {
class BoundarySink;
}

namespace wb::env {

enum class Browser : uint8_t { Chrome, Firefox, Edge };
enum class Platform : uint8_t { Desktop, Mobile };

const char* to_string(Browser b);
const char* to_string(Platform p);

/// Everything that differs between deployment settings.
struct Profile {
  Browser browser = Browser::Chrome;
  Platform platform = Platform::Desktop;

  // Execution-speed factors applied to the engine cost tables.
  double wasm_factor = 1.0;
  double js_factor = 1.0;

  // JS engine shape.
  double js_baseline_multiplier = 45.0;
  double js_opt_factor = 1.0;  ///< quality of the optimizing JS tier  ///< interpreter vs optimized tier
  uint64_t js_tierup_threshold = 700;
  uint64_t js_parse_cost_per_byte = 18'000;  ///< parse + compile + first-run setup

  // Wasm engine shape.
  double wasm_baseline_multiplier = 1.25;  ///< LiftOff/Baseline vs TurboFan/Ion
  uint64_t wasm_tierup_threshold = 20'000;
  uint64_t wasm_decode_cost_per_byte = 1'800;  ///< decode + baseline compile
  uint64_t wasm_instantiate_overhead_ps = 4'000'000;  ///< fixed module setup

  // Page & boundary.
  uint64_t page_overhead_ps = 2'000'000;   ///< renderer/page noise floor
  uint64_t boundary_cost_ps = 60'000;       ///< one JS<->Wasm call crossing
  uint64_t grow_cost_ps = 90'000;           ///< one memory.grow request

  // DevTools memory baselines (bytes) per engine.
  size_t js_base_memory = 880 << 10;
  size_t wasm_base_memory = 1870 << 10;
};

/// The calibrated profile for a deployment setting.
Profile profile_for(Browser browser, Platform platform);

/// Per-run knobs (the paper's Chrome flags, Table 11).
struct RunOptions {
  bool js_jit_enabled = true;  ///< false = --no-opt
  enum class WasmTiers : uint8_t {
    Default,         ///< both compilers (browser default)
    BaselineOnly,    ///< --liftoff --no-wasm-tier-up
    OptimizingOnly,  ///< --no-liftoff --no-wasm-tier-up
  } wasm_tiers = WasmTiers::Default;
  backend::Toolchain toolchain = backend::Toolchain::Cheerp;
  /// Warm-start the page from a wb::snap instance snapshot: the decode +
  /// instantiate (wasm) or parse + top-level (JS) pipeline is replaced by
  /// a modeled bytes-proportional `snapshot_restore` charge attributed to
  /// Startup. Falls back to the cold path when wb::snap is disabled
  /// (WB_NO_SNAP) or warm-up fails. Changes metrics by design — off by
  /// default so golden runs keep the cold pipeline.
  bool snapshot = false;
  /// JS collector mode (--gc=generational). The default keeps the exact
  /// mark-sweep collector and all of its GC-stat observables.
  enum class JsGc : uint8_t { MarkSweep, Generational } js_gc = JsGc::MarkSweep;
  /// Extra JS<->Wasm crossings the page performs beyond host imports
  /// (e.g. a JS driver loop calling an export per operation, as the
  /// Long.js benchmark does).
  uint64_t extra_boundary_crossings = 0;
  /// Profiler sink (wb::prof). When set, the page emits load/instantiate
  /// phase spans and the VMs emit function/tier-up/grow/GC events into
  /// it — the DevTools-style collection of paper Sec. 3.3. Wasm runs land
  /// on prof::kWasmTrack, JS runs on prof::kJsTrack, so one tracer can
  /// hold a whole measure() cell. Tracing never changes any metric.
  prof::Tracer* tracer = nullptr;
  /// Boundary recorder (wb::replay). When set, the page emits the engine
  /// configuration and its one-off load/parse/boundary charges, and the
  /// VMs report host-import calls, memory.grow, and intercepted builtins
  /// into it — everything a standalone replay needs. Like the tracer,
  /// recording never changes any metric.
  replay::BoundarySink* recorder = nullptr;
};

/// What DevTools reports for one page run.
struct PageMetrics {
  bool ok = true;
  std::string error;
  int32_t result = 0;       ///< the benchmark checksum
  double time_ms = 0;       ///< execution time incl. load/instantiate
  uint64_t cost_ps = 0;     ///< the same time on the exact virtual clock
  size_t memory_bytes = 0;  ///< engine baseline + program memory
  size_t code_size = 0;     ///< wasm binary bytes / JS source bytes
  uint64_t ops = 0;
  uint64_t boundary_crossings = 0;
  /// Per-cause decomposition of cost_ps (wb::attr); the lanes sum to
  /// cost_ps exactly. All zeros when attribution is disabled.
  attr::CauseVec attr_ps{};
};

/// A browser tab: loads one program at a time and reports metrics.
class BrowserEnv {
 public:
  BrowserEnv(Browser browser, Platform platform)
      : profile_(profile_for(browser, platform)) {}
  explicit BrowserEnv(Profile profile) : profile_(profile) {}

  /// Runs a compiled Wasm module: instantiate (__init) + main().
  PageMetrics run_wasm(const backend::WasmArtifact& artifact,
                       const RunOptions& options = {}) const;

  /// Loads JS source and calls main().
  PageMetrics run_js(std::string_view source, const RunOptions& options = {}) const;

  /// Microbenchmark: average cost of one JS<->Wasm call crossing, in ns
  /// (the Sec. 4.5 context-switch measurement).
  [[nodiscard]] double context_switch_ns() const;

  [[nodiscard]] const Profile& profile() const { return profile_; }

  /// Cost tables derived from the profile (exposed for tests).
  [[nodiscard]] wasm::CostTable wasm_tier_costs(bool optimizing,
                                                const RunOptions& options) const;
  [[nodiscard]] js::JsCostTable js_tier_costs(bool optimized) const;

 private:
  Profile profile_;
};

}  // namespace wb::env
