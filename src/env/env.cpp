#include "env/env.h"

#include <cmath>
#include <optional>

#include "attr/attr.h"
#include "js/engine.h"
#include "prof/prof.h"
#include "replay/boundary.h"
#include "snap/snap.h"

namespace wb::env {

const char* to_string(Browser b) {
  switch (b) {
    case Browser::Chrome: return "Chrome";
    case Browser::Firefox: return "Firefox";
    case Browser::Edge: return "Edge";
  }
  return "?";
}

const char* to_string(Platform p) {
  return p == Platform::Desktop ? "Desktop" : "Mobile";
}

namespace {

// ------------------------------------------------------------------------
// Reference cost tables (desktop Chrome, optimizing tiers), in ps/op.
// Everything else is expressed as factors of these.
// ------------------------------------------------------------------------

wasm::CostTable wasm_optimizing_reference() {
  using wasm::OpClass;
  wasm::CostTable t{};
  t[static_cast<size_t>(OpClass::Const)] = 130;
  t[static_cast<size_t>(OpClass::LocalVar)] = 130;
  t[static_cast<size_t>(OpClass::GlobalVar)] = 260;
  t[static_cast<size_t>(OpClass::IntArith)] = 260;
  t[static_cast<size_t>(OpClass::IntMul)] = 600;
  t[static_cast<size_t>(OpClass::IntDiv)] = 3400;
  t[static_cast<size_t>(OpClass::FloatArith)] = 600;
  t[static_cast<size_t>(OpClass::FloatDiv)] = 3000;
  t[static_cast<size_t>(OpClass::Convert)] = 380;
  t[static_cast<size_t>(OpClass::Load)] = 780;
  t[static_cast<size_t>(OpClass::Store)] = 780;
  t[static_cast<size_t>(OpClass::Branch)] = 780;
  // Wasm calls are direct jumps — cheap, unlike pre-inlining JS calls.
  t[static_cast<size_t>(OpClass::Call)] = 2200;
  t[static_cast<size_t>(OpClass::MemoryGrow)] = 8'000;
  t[static_cast<size_t>(OpClass::Misc)] = 260;
  return t;
}

js::JsCostTable js_optimized_reference() {
  using js::JsOpClass;
  js::JsCostTable t{};
  t[static_cast<size_t>(JsOpClass::Const)] = 90;
  t[static_cast<size_t>(JsOpClass::Local)] = 90;
  t[static_cast<size_t>(JsOpClass::Global)] = 180;
  t[static_cast<size_t>(JsOpClass::Arith)] = 230;
  // |0 coercions and shifts are effectively free once the optimizing JIT
  // has typed the code — the asm.js contract.
  t[static_cast<size_t>(JsOpClass::BitOp)] = 40;
  t[static_cast<size_t>(JsOpClass::Compare)] = 190;
  t[static_cast<size_t>(JsOpClass::Branch)] = 500;
  t[static_cast<size_t>(JsOpClass::Stack)] = 60;
  t[static_cast<size_t>(JsOpClass::Call)] = 4500;
  t[static_cast<size_t>(JsOpClass::Return)] = 560;
  t[static_cast<size_t>(JsOpClass::Prop)] = 600;
  t[static_cast<size_t>(JsOpClass::Index)] = 490;
  t[static_cast<size_t>(JsOpClass::Alloc)] = 5600;
  // Boxed (non-typed) array element access pays tag/hole checks even in
  // optimized code — the hand-written-JS tax of paper Table 9.
  t[static_cast<size_t>(JsOpClass::BoxedIndex)] = 2000;
  t[static_cast<size_t>(JsOpClass::Misc)] = 300;
  return t;
}

/// The baseline (pre-JIT) JS tier: dynamic dispatch everywhere. Calls and
/// allocation don't get much slower; arithmetic and indexing do — that is
/// where the paper's JS JIT speedups (Fig. 10) come from.
js::JsCostTable js_baseline_from(const js::JsCostTable& optimized, double mult) {
  using js::JsOpClass;
  js::JsCostTable t = optimized;
  const auto scale = [&](JsOpClass c, double f) {
    t[static_cast<size_t>(c)] =
        static_cast<uint64_t>(static_cast<double>(t[static_cast<size_t>(c)]) * f);
  };
  scale(JsOpClass::Const, mult * 0.35);
  scale(JsOpClass::Local, mult * 0.35);
  scale(JsOpClass::Global, mult * 0.5);
  scale(JsOpClass::Arith, mult);
  scale(JsOpClass::BitOp, mult * 6.0);  // coercions are real work pre-JIT
  scale(JsOpClass::Compare, mult);
  scale(JsOpClass::Branch, mult * 0.3);
  scale(JsOpClass::Stack, mult * 0.3);
  scale(JsOpClass::Call, 4.0);
  scale(JsOpClass::Return, 3.0);
  scale(JsOpClass::Prop, mult * 0.5);
  scale(JsOpClass::Index, mult);
  scale(JsOpClass::BoxedIndex, mult * 0.6);
  scale(JsOpClass::Alloc, 1.5);
  scale(JsOpClass::Misc, 3.0);
  return t;
}

uint64_t scaled(uint64_t v, double f) {
  return static_cast<uint64_t>(std::llround(static_cast<double>(v) * f));
}

/// Emits one Cat::Attr instant per nonzero cause so trace exports show
/// the final decomposition alongside the timeline. Observation only.
void emit_attr_instants(prof::Tracer* tr, const attr::CauseVec& v, uint64_t t_ps) {
  if (!tr) return;
  for (size_t i = 0; i < attr::kCauseCount; ++i) {
    if (v[i] == 0) continue;
    tr->instant(prof::Cat::Attr,
                tr->intern(attr::to_string(static_cast<attr::Cause>(i))), t_ps, v[i]);
  }
}

}  // namespace

Profile profile_for(Browser browser, Platform platform) {
  Profile p;
  p.browser = browser;
  p.platform = platform;

  // Execution-speed factors calibrated against the paper's Table 8
  // (Chrome desktop = 1.0 for both engines):
  //   desktop:  Firefox Wasm 0.61x, Edge Wasm 1.28x; Firefox JS 1.06x,
  //             Edge JS 1.40x.
  //   mobile (relative to mobile Chrome): Firefox Wasm 1.48x, Edge 0.83x;
  //             Firefox JS 0.67x, Edge JS 0.81x.
  const bool mobile = platform == Platform::Mobile;
  const double mobile_wasm = 3.57;  // mobile Chrome Wasm vs desktop Chrome
  const double mobile_js = 5.46;    // mobile Chrome JS vs desktop Chrome
  switch (browser) {
    case Browser::Chrome:
      p.wasm_factor = mobile ? mobile_wasm : 1.0;
      p.js_factor = mobile ? mobile_js : 1.0;
      // TurboFan's steady-state on this numeric-typed-array code trails
      // its Wasm tier a little more than SpiderMonkey's JS does.
      p.js_opt_factor = 1.22;
      break;
    case Browser::Firefox:
      p.wasm_factor = mobile ? mobile_wasm * 1.48 : 0.61;
      p.js_factor = mobile ? mobile_js * 0.67 : 1.06;
      // SpiderMonkey: cheap JS startup and a strong Ion Wasm tier, but a
      // slow Wasm instantiation path — the mechanism behind the paper's
      // Table 5 (JS wins at XS on Firefox, Wasm wins at XL).
      p.js_baseline_multiplier = 10.0;
      p.js_tierup_threshold = 450;
      p.js_parse_cost_per_byte = 13'000;
      p.js_opt_factor = 1.35;  // Ion's JS tier trails TurboFan on this code
      p.wasm_decode_cost_per_byte = 60'000;  // heavier baseline compile
      p.wasm_instantiate_overhead_ps = 150'000'000;
      p.wasm_baseline_multiplier = 1.30;
      p.boundary_cost_ps = 7'800;  // the 2018 call-path optimization (0.13x)
      p.js_base_memory = mobile ? 693 << 10 : 508 << 10;
      p.wasm_base_memory = mobile ? 2760 << 10 : 1470 << 10;
      break;
    case Browser::Edge:
      p.wasm_factor = mobile ? mobile_wasm * 0.83 : 1.28;
      p.js_factor = mobile ? mobile_js * 0.81 : 1.40;
      p.js_opt_factor = 1.22;
      p.boundary_cost_ps = 66'000;
      p.js_base_memory = mobile ? 967 << 10 : 871 << 10;
      p.wasm_base_memory = mobile ? 2950 << 10 : 1860 << 10;
      break;
  }
  if (browser == Browser::Chrome) {
    p.js_base_memory = mobile ? 407 << 10 : 880 << 10;
    p.wasm_base_memory = mobile ? 2390 << 10 : 1870 << 10;
  }
  if (mobile) {
    p.page_overhead_ps = 900'000'000;
    p.js_parse_cost_per_byte *= 3;
    p.wasm_decode_cost_per_byte *= 3;
    p.boundary_cost_ps *= 3;
  }
  return p;
}

wasm::CostTable BrowserEnv::wasm_tier_costs(bool optimizing,
                                            const RunOptions& options) const {
  wasm::CostTable t = wasm_optimizing_reference();
  double factor = profile_.wasm_factor;
  if (!optimizing) factor *= profile_.wasm_baseline_multiplier;
  // Toolchain maturity: Emscripten's codegen + runtime is markedly faster
  // than Cheerp's (the other half of the paper's Sec. 4.2.2 gap, besides
  // memory.grow traffic).
  if (options.toolchain == backend::Toolchain::Emscripten) factor *= 0.45;
  for (auto& v : t) v = scaled(v, factor);
  return t;
}

js::JsCostTable BrowserEnv::js_tier_costs(bool optimized) const {
  js::JsCostTable opt = js_optimized_reference();
  for (auto& v : opt) v = scaled(v, profile_.js_factor);
  if (optimized) {
    for (auto& v : opt) v = scaled(v, profile_.js_opt_factor);
    return opt;
  }
  return js_baseline_from(opt, profile_.js_baseline_multiplier);
}

PageMetrics BrowserEnv::run_wasm(const backend::WasmArtifact& artifact,
                                 const RunOptions& options) const {
  PageMetrics metrics;
  if (!artifact.ok()) {
    metrics.ok = false;
    metrics.error = artifact.error;
    return metrics;
  }

  uint64_t boundary_calls = 0;
  wasm::Instance inst(artifact.module,
                      backend::make_import_bindings(artifact, &boundary_calls));
  inst.set_cost_tables(wasm_tier_costs(false, options), wasm_tier_costs(true, options));
  inst.set_fuel(4'000'000'000ull);

  wasm::TierPolicy tiers;
  tiers.tierup_threshold = profile_.wasm_tierup_threshold;
  tiers.tierup_cost_per_instr = 400;
  switch (options.wasm_tiers) {
    case RunOptions::WasmTiers::Default:
      break;
    case RunOptions::WasmTiers::BaselineOnly:
      tiers.optimizing_enabled = false;
      break;
    case RunOptions::WasmTiers::OptimizingOnly:
      tiers.baseline_enabled = false;
      break;
  }
  inst.set_tier_policy(tiers);
  inst.set_grow_cost(profile_.grow_cost_ps);

  // Boundary recording (wb::replay): emit the full engine configuration
  // first so a standalone replayer can rebuild the same virtual clock,
  // then attach the sink for host-call/grow events.
  replay::BoundarySink* const rec = options.recorder;
  if (rec) {
    replay::EngineConfig cfg;
    cfg.kind = 0;
    cfg.baseline_enabled = tiers.baseline_enabled;
    cfg.optimizing_enabled = tiers.optimizing_enabled;
    cfg.tierup_threshold = tiers.tierup_threshold;
    cfg.tierup_cost_per_instr = tiers.tierup_cost_per_instr;
    cfg.grow_cost_ps = profile_.grow_cost_ps;
    cfg.fuel = 4'000'000'000ull;
    const wasm::CostTable base = wasm_tier_costs(false, options);
    const wasm::CostTable opt = wasm_tier_costs(true, options);
    cfg.baseline_costs.assign(base.begin(), base.end());
    cfg.optimizing_costs.assign(opt.begin(), opt.end());
    rec->engine_config(cfg);
    inst.set_recorder(rec);
  }

  // Warm-start (wb::snap): capture a post-instantiate snapshot from a
  // throwaway warm-up instance. The measured page then restores it at a
  // modeled bytes-proportional cost instead of decoding + instantiating.
  std::optional<snap::WasmSnapshot> snapshot;
  if (options.snapshot && snap::snap_default()) {
    uint64_t warm_calls = 0;
    wasm::Instance warm(artifact.module,
                        backend::make_import_bindings(artifact, &warm_calls));
    warm.set_cost_tables(wasm_tier_costs(false, options),
                         wasm_tier_costs(true, options));
    warm.set_fuel(4'000'000'000ull);
    warm.set_tier_policy(tiers);
    warm.set_grow_cost(profile_.grow_cost_ps);
    if (warm.invoke("__init", {}).ok()) snapshot = snap::snapshot_wasm(warm);
  }

  // DevTools-style collection (paper Sec. 3.3): page phases become Page
  // spans, the VM emits function/tier-up/grow events between them.
  prof::Tracer* const tr = options.tracer;
  uint32_t load_id = 0, init_id = 0, main_id = 0, boundary_id = 0;
  if (tr) {
    tr->set_track(prof::kWasmTrack);
    load_id = tr->intern("page:load");
    init_id = tr->intern(snapshot ? "page:restore" : "page:instantiate");
    main_id = tr->intern("page:main");
    boundary_id = tr->intern("page:boundary");
    inst.set_tracer(tr);
    tr->begin(prof::Cat::Page, load_id, inst.stats().cost_ps);
  }

  // Load: page overhead + decode/compile of the binary. The optimizing-
  // only configuration compiles everything with the heavy compiler up
  // front (more load time, repaid on hot code). A snapshot warm start
  // pays only the page overhead here; decode and instantiate are
  // replaced by the restore below.
  uint64_t decode_factor = profile_.wasm_decode_cost_per_byte;
  if (options.wasm_tiers == RunOptions::WasmTiers::OptimizingOnly) decode_factor *= 2;
  const uint64_t load_ps =
      snapshot ? profile_.page_overhead_ps
               : profile_.page_overhead_ps + profile_.wasm_instantiate_overhead_ps +
                     decode_factor * artifact.binary.size();
  inst.charge(load_ps);
  if (rec) rec->page_charge(replay::PagePhase::Load, load_ps);
  if (tr) {
    tr->end(prof::Cat::Page, load_id, inst.stats().cost_ps);
    tr->begin(prof::Cat::Page, init_id, inst.stats().cost_ps);
  }

  if (snapshot) {
    // Restore: map the snapshot into the fresh instance (memory, globals,
    // tier state, JIT verdicts) and charge the modeled restore cost.
    if (!snap::resume_wasm(inst, *snapshot, snap::Resume::WarmStart)) {
      metrics.ok = false;
      metrics.error = "snapshot restore failed: shape mismatch";
      return metrics;
    }
    if (tr) tr->end(prof::Cat::Page, init_id, inst.stats().cost_ps);
  } else {
    // Instantiate: the runtime sets up linear memory (bump allocations and
    // memory.grow traffic happen here; measured, as in the paper).
    const wasm::InvokeResult init = inst.invoke("__init", {});
    if (tr) tr->end(prof::Cat::Page, init_id, inst.stats().cost_ps);
    if (!init.ok()) {
      metrics.ok = false;
      metrics.error =
          std::string("instantiate trapped: ") + wasm::to_string(init.trap);
      return metrics;
    }
  }
  if (tr) tr->begin(prof::Cat::Page, main_id, inst.stats().cost_ps);
  const wasm::InvokeResult r = inst.invoke("main", {});
  if (tr) tr->end(prof::Cat::Page, main_id, inst.stats().cost_ps);
  if (!r.ok()) {
    metrics.ok = false;
    metrics.error = std::string("main trapped: ") + wasm::to_string(r.trap);
    return metrics;
  }

  // Each host (imported) call is a JS<->Wasm boundary crossing; the
  // invoke() calls are crossings too (one only, when a snapshot replaced
  // the __init invoke).
  const uint64_t crossings = boundary_calls + (snapshot ? 1 : 2) +
                             options.extra_boundary_crossings;
  if (tr) tr->begin(prof::Cat::Page, boundary_id, inst.stats().cost_ps);
  const uint64_t boundary_ps = crossings * profile_.boundary_cost_ps;
  inst.charge(boundary_ps, attr::Cause::CallOverhead);
  if (rec) rec->page_charge(replay::PagePhase::Boundary, boundary_ps);
  if (tr) {
    tr->instant(prof::Cat::Boundary, tr->intern("js<->wasm crossings"),
                inst.stats().cost_ps, crossings);
    tr->end(prof::Cat::Page, boundary_id, inst.stats().cost_ps);
    inst.set_tracer(nullptr);
  }

  if (attr::enabled()) {
    metrics.attr_ps = attr::decompose_wasm(inst.attr_stats(), inst.cost_tables());
    emit_attr_instants(tr, metrics.attr_ps, inst.stats().cost_ps);
  }

  metrics.result = r.value.as_i32();
  metrics.time_ms = static_cast<double>(inst.stats().cost_ps) / 1e9;
  metrics.cost_ps = inst.stats().cost_ps;
  metrics.memory_bytes =
      profile_.wasm_base_memory + (inst.memory() ? inst.memory()->peak_bytes() : 0);
  metrics.code_size = artifact.binary.size();
  metrics.ops = inst.stats().ops_executed;
  metrics.boundary_crossings = crossings;
  return metrics;
}

PageMetrics BrowserEnv::run_js(std::string_view source, const RunOptions& options) const {
  PageMetrics metrics;
  std::string error;
  auto code = js::compile_script(source, error);
  if (!code) {
    metrics.ok = false;
    metrics.error = "script error: " + error;
    return metrics;
  }

  js::JsTierPolicy tiers;
  tiers.jit_enabled = options.js_jit_enabled;
  tiers.tierup_threshold = profile_.js_tierup_threshold;
  tiers.tierup_cost_per_instr = 1500;

  const auto configure = [&](js::Vm& v) {
    v.set_cost_tables(js_tier_costs(false), js_tier_costs(true));
    v.set_fuel(4'000'000'000ull);
    v.set_tier_policy(tiers);
    if (options.js_gc == RunOptions::JsGc::Generational) {
      v.set_gc_mode(js::GcMode::Generational);
    }
  };

  js::Heap heap(4 << 20);
  js::Vm vm(*code, heap);
  configure(vm);

  // Warm-start (wb::snap): snapshot a throwaway VM after its top-level
  // ran; the measured page restores it below instead of parsing.
  std::optional<snap::JsSnapshot> snapshot;
  if (options.snapshot && snap::snap_default()) {
    js::Heap warm_heap(4 << 20);
    js::Vm warm(*code, warm_heap);
    configure(warm);
    if (warm.run_top_level().ok) snapshot = snap::snapshot_js(warm);
  }

  replay::BoundarySink* const rec = options.recorder;
  if (rec) {
    replay::EngineConfig cfg;
    cfg.kind = 1;
    cfg.baseline_enabled = true;
    cfg.optimizing_enabled = tiers.jit_enabled;
    cfg.tierup_threshold = tiers.tierup_threshold;
    cfg.tierup_cost_per_instr = tiers.tierup_cost_per_instr;
    cfg.fuel = 4'000'000'000ull;
    cfg.heap_bytes = 4 << 20;
    const js::JsCostTable base = js_tier_costs(false);
    const js::JsCostTable opt = js_tier_costs(true);
    cfg.baseline_costs.assign(base.begin(), base.end());
    cfg.optimizing_costs.assign(opt.begin(), opt.end());
    rec->engine_config(cfg);
    vm.set_recorder(rec);
  }

  prof::Tracer* const tr = options.tracer;
  uint32_t parse_id = 0;
  if (tr) {
    tr->set_track(prof::kJsTrack);
    parse_id = tr->intern("page:parse");
    vm.set_tracer(tr);
    tr->begin(prof::Cat::Page, parse_id, vm.stats().cost_ps);
  }
  const uint64_t parse_ps =
      snapshot ? profile_.page_overhead_ps
               : profile_.page_overhead_ps +
                     profile_.js_parse_cost_per_byte * source.size();
  vm.charge(parse_ps);
  if (rec) rec->page_charge(replay::PagePhase::Parse, parse_ps);
  if (tr) tr->end(prof::Cat::Page, parse_id, vm.stats().cost_ps);

  if (snapshot) {
    // Restore the warmed heap/globals/tier state at the modeled cost
    // instead of re-running the top level.
    if (!snap::resume_js(vm, *snapshot, snap::Resume::WarmStart)) {
      metrics.ok = false;
      metrics.error = "snapshot restore failed: shape mismatch";
      return metrics;
    }
  } else {
    const js::Vm::Result top = vm.run_top_level();
    if (!top.ok) {
      metrics.ok = false;
      metrics.error = "top-level: " + top.error;
      return metrics;
    }
  }
  const js::Vm::Result r = vm.call_function("main", {});
  if (!r.ok) {
    metrics.ok = false;
    metrics.error = "main: " + r.error;
    return metrics;
  }
  metrics.result = r.value.is_number() ? js::to_int32(r.value.num()) : 0;

  // DevTools-style heap metric: live GC-heap bytes after collection plus
  // the engine baseline. Typed-array backing stores are external (this is
  // why compiler-generated JS looks flat in the paper).
  if (tr) vm.set_tracer(nullptr);
  heap.collect();
  if (attr::enabled()) {
    metrics.attr_ps = attr::decompose_js(vm.attr_stats(), vm.cost_tables());
    emit_attr_instants(tr, metrics.attr_ps, vm.stats().cost_ps);
  }
  metrics.time_ms = static_cast<double>(vm.stats().cost_ps) / 1e9;
  metrics.cost_ps = vm.stats().cost_ps;
  metrics.memory_bytes = profile_.js_base_memory +
                         std::max(heap.stats().peak_live_bytes, heap.stats().live_bytes);
  metrics.code_size = source.size();
  metrics.ops = vm.stats().ops_executed;
  return metrics;
}

double BrowserEnv::context_switch_ns() const {
  return static_cast<double>(profile_.boundary_cost_ps) / 1000.0;
}

}  // namespace wb::env
