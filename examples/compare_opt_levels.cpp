// Scenario: a compiler developer investigating the paper's headline
// finding — optimization levels behave differently for Wasm than for x86.
// Sweeps one benchmark across every -O level on all three targets.
//
//   $ ./build/examples/compare_opt_levels [benchmark]   (default: gemm)
#include <cstdio>

#include "benchmarks/registry.h"
#include "core/study.h"
#include "ir/exec.h"

int main(int argc, char** argv) {
  using namespace wb;

  const char* name = argc > 1 ? argv[1] : "gemm";
  const core::BenchSource* bench = benchmarks::find_benchmark(name);
  if (!bench) {
    std::fprintf(stderr, "unknown benchmark '%s'; see README for the list\n", name);
    return 1;
  }

  env::BrowserEnv chrome(env::Browser::Chrome, env::Platform::Desktop);
  std::printf("benchmark: %s (%s), input M, desktop Chrome\n\n", bench->name.c_str(),
              bench->suite.c_str());
  std::printf("%-6s | %10s %9s | %10s %9s | %10s %9s\n", "level", "wasm ms",
              "wasm B", "js ms", "js B", "x86 ms", "x86 B");

  for (ir::OptLevel level :
       {ir::OptLevel::O0, ir::OptLevel::O1, ir::OptLevel::O2, ir::OptLevel::O3,
        ir::OptLevel::Ofast, ir::OptLevel::Os, ir::OptLevel::Oz}) {
    const core::BuildResult b = core::build(*bench, core::InputSize::M, level);
    if (!b.ok) {
      std::fprintf(stderr, "%s\n", b.error.c_str());
      return 1;
    }
    const env::PageMetrics wm = chrome.run_wasm(b.wasm);
    const env::PageMetrics jm = chrome.run_js(b.js_source);
    const core::NativeMetrics nm =
        core::run_native(b, level == ir::OptLevel::Ofast);
    if (!wm.ok || !jm.ok || !nm.ok) {
      std::fprintf(stderr, "run failed at %s\n", ir::to_string(level));
      return 1;
    }
    std::printf("%-6s | %10.4f %9zu | %10.4f %9zu | %10.4f %9zu\n",
                ir::to_string(level), wm.time_ms, wm.code_size, jm.time_ms,
                jm.code_size, nm.time_ms, nm.code_size);
  }

  std::printf(
      "\nExpected shape (paper Table 2): on x86, -Ofast is fastest and -O1/-Oz\n"
      "lag; on Wasm the order inverts — -Oz tends to win because -O2's\n"
      "vectorization must be scalarized and constant propagation re-materializes\n"
      "f64 constants through i32.const + f64.convert_i32_s.\n");
  return 0;
}
