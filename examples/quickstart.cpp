// Quickstart: compile a C program to all three targets and measure it in
// a simulated browser.
//
//   $ ./build/examples/quickstart
//
// This walks the full pipeline the library exposes:
//   mini-C --> IR --> (-O2 passes) --> {Wasm binary, JS source, native}
//   then loads each in a desktop-Chrome environment and prints the
//   DevTools-style metrics the study is built on.
#include <cstdio>

#include "backend/js_backend.h"
#include "backend/native_backend.h"
#include "backend/wasm_backend.h"
#include "env/env.h"
#include "ir/exec.h"
#include "ir/passes.h"
#include "minic/minic.h"

int main() {
  using namespace wb;

  // 1. A small C program: dot product with a checksum result.
  const char* source = R"(
    #define N 512
    double xs[N];
    double ys[N];
    int main(void) {
      int i;
      for (i = 0; i < N; i++) {
        xs[i] = (double)i / 7.0;
        ys[i] = (double)(N - i) / 11.0;
      }
      double dot = 0.0;
      for (i = 0; i < N; i++) dot += xs[i] * ys[i];
      return (int)dot;
    }
  )";

  // 2. Compile to IR and optimize at -O2.
  std::string error;
  auto module = minic::compile(source, {}, error);
  if (!module) {
    std::fprintf(stderr, "compile error: %s\n", error.c_str());
    return 1;
  }
  const ir::PipelineInfo pipeline = ir::run_pipeline(*module, ir::OptLevel::O2);
  std::printf("passes run:");
  for (const auto& p : pipeline.passes_run) std::printf(" %s", p.c_str());
  std::printf("\n\n");

  // 3. Lower to each target. (The module is consumed; compile per target.)
  auto fresh = [&] {
    auto m = minic::compile(source, {}, error);
    ir::run_pipeline(*m, ir::OptLevel::O2);
    return std::move(*m);
  };
  backend::WasmOptions wasm_options;
  const backend::WasmArtifact wasm = backend::compile_to_wasm(fresh(), wasm_options);
  const backend::JsArtifact js = backend::compile_to_js(fresh(), {});
  const backend::NativeArtifact native = backend::compile_to_native(fresh());
  std::printf("wasm binary: %zu bytes | generated JS: %zu bytes | native: ~%zu bytes\n\n",
              wasm.binary.size(), js.source.size(), native.code_size);

  // 4. Run in a simulated desktop-Chrome page.
  env::BrowserEnv chrome(env::Browser::Chrome, env::Platform::Desktop);
  const env::PageMetrics wm = chrome.run_wasm(wasm);
  const env::PageMetrics jm = chrome.run_js(js.source);

  ir::Executor exec(native.module);
  const ir::ExecResult nr = exec.run("main");

  std::printf("%-8s %10s %12s %12s\n", "target", "result", "time (ms)", "memory (KB)");
  std::printf("%-8s %10d %12.4f %12.1f\n", "wasm", wm.result, wm.time_ms,
              static_cast<double>(wm.memory_bytes) / 1024);
  std::printf("%-8s %10d %12.4f %12.1f\n", "js", jm.result, jm.time_ms,
              static_cast<double>(jm.memory_bytes) / 1024);
  std::printf("%-8s %10d %12.4f %12s\n", "native", nr.as_i32(),
              static_cast<double>(exec.stats().cost_ps) / 1e9, "-");

  if (wm.result == jm.result && jm.result == nr.as_i32()) {
    std::printf("\nall three targets agree: checksum %d\n", wm.result);
    return 0;
  }
  std::fprintf(stderr, "\nchecksum mismatch!\n");
  return 1;
}
