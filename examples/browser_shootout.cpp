// Scenario: a web developer deciding whether to ship Wasm or JS, given
// their audience's browsers — the paper's Sec. 4.5 question. Runs one
// benchmark in all six deployment settings and prints the decision table.
//
//   $ ./build/examples/browser_shootout [benchmark]   (default: jacobi-2d)
#include <cstdio>

#include "benchmarks/registry.h"
#include "core/study.h"

int main(int argc, char** argv) {
  using namespace wb;

  const char* name = argc > 1 ? argv[1] : "jacobi-2d";
  const core::BenchSource* bench = benchmarks::find_benchmark(name);
  if (!bench) {
    std::fprintf(stderr, "unknown benchmark '%s'\n", name);
    return 1;
  }

  const core::BuildResult b = core::build(*bench, core::InputSize::M, ir::OptLevel::O2);
  if (!b.ok) {
    std::fprintf(stderr, "%s\n", b.error.c_str());
    return 1;
  }

  std::printf("benchmark: %s, input M, -O2\n\n", bench->name.c_str());
  std::printf("%-20s %12s %12s %10s %s\n", "setting", "wasm (ms)", "js (ms)", "js/wasm",
              "ship");

  for (env::Platform platform : {env::Platform::Desktop, env::Platform::Mobile}) {
    for (env::Browser browser :
         {env::Browser::Chrome, env::Browser::Firefox, env::Browser::Edge}) {
      env::BrowserEnv browser_env(browser, platform);
      const env::PageMetrics wm = browser_env.run_wasm(b.wasm);
      const env::PageMetrics jm = browser_env.run_js(b.js_source);
      if (!wm.ok || !jm.ok) {
        std::fprintf(stderr, "run failed\n");
        return 1;
      }
      char label[64];
      std::snprintf(label, sizeof label, "%s/%s", env::to_string(browser),
                    env::to_string(platform));
      std::printf("%-20s %12.4f %12.4f %10.2f %s\n", label, wm.time_ms, jm.time_ms,
                  jm.time_ms / wm.time_ms, jm.time_ms > wm.time_ms ? "wasm" : "js");
    }
  }

  std::printf(
      "\nThe paper's point: the winner is environment-dependent — Firefox runs\n"
      "Wasm fastest on desktop, while on mobile the ordering changes again.\n");
  return 0;
}
