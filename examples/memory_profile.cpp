// Scenario: why does the Wasm build of an app hold so much more memory
// than the JS build? Sweeps input sizes for one benchmark and prints the
// DevTools-style memory metric for both targets, showing the paper's
// Sec. 4.3 finding: JS stays flat (GC reclaims; typed-array payloads are
// external), Wasm's linear memory only ever grows.
//
//   $ ./build/examples/memory_profile [benchmark]   (default: gemm)
#include <cstdio>

#include "benchmarks/registry.h"
#include "core/study.h"

int main(int argc, char** argv) {
  using namespace wb;

  const char* name = argc > 1 ? argv[1] : "gemm";
  const core::BenchSource* bench = benchmarks::find_benchmark(name);
  if (!bench) {
    std::fprintf(stderr, "unknown benchmark '%s'\n", name);
    return 1;
  }

  env::BrowserEnv chrome(env::Browser::Chrome, env::Platform::Desktop);
  std::printf("benchmark: %s, -O2, desktop Chrome\n\n", bench->name.c_str());
  std::printf("%-6s %16s %16s %14s\n", "input", "js memory (KB)", "wasm memory (KB)",
              "wasm/js");

  for (core::InputSize size : core::kAllSizes) {
    const core::Measurement m = core::measure(*bench, size, ir::OptLevel::O2, chrome);
    if (!m.wasm.ok || !m.js.ok) {
      std::fprintf(stderr, "run failed: %s%s\n", m.wasm.error.c_str(), m.js.error.c_str());
      return 1;
    }
    std::printf("%-6s %16.1f %16.1f %14.2f\n", core::to_string(size),
                static_cast<double>(m.js.memory_bytes) / 1024,
                static_cast<double>(m.wasm.memory_bytes) / 1024,
                static_cast<double>(m.wasm.memory_bytes) /
                    static_cast<double>(m.js.memory_bytes));
  }

  std::printf(
      "\nJS uses garbage collection (and keeps typed-array payloads outside the\n"
      "heap snapshot); Wasm's linear memory is a growable ArrayBuffer that is\n"
      "never shrunk — the paper's explanation for its Table 4.\n");
  return 0;
}
