// Microbenchmark regression gate. Compares a fresh google-benchmark JSON
// report against the committed snapshot (BENCH_vm_micro.json) and fails if
// any tracked family's items/sec dropped by more than the tolerance:
//
//   wb_bench_check --baseline=BENCH_vm_micro.json --current=out.json
//                  --family=BM_WasmInterpreterHotLoop [--tolerance=0.25]
//
// It can also enforce machine-independent speedup ratios between pairs of
// benchmarks of the SAME report (the quickened engine's >=2x contract, the
// snapshot restore's >=5x contract). The three ratio flags repeat; the
// i-th --ratio-num / --ratio-den / --min-ratio form one gate, and every
// gate is evaluated and printed before the exit status is decided, so one
// run reports ALL failing ratios rather than stopping at the first:
//
//   wb_bench_check --current=out.json
//                  --ratio-num=BM_WasmQuickenedHotLoop/100000
//                  --ratio-den=BM_WasmInterpreterHotLoop/100000
//                  --min-ratio=2.0
//                  --ratio-num=BM_SnapshotRestore
//                  --ratio-den=BM_ColdInstantiate
//                  --min-ratio=5.0
//
// Exit status: 0 ok, 1 regression/ratio failure, 2 usage/IO error or a
// baseline recorded from a non-release build (context.library_build_type).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "support/json.h"

namespace {

using wb::support::json::Value;

int usage() {
  std::fprintf(stderr,
               "usage: wb_bench_check --current=FILE [--baseline=FILE]\n"
               "                      [--family=PREFIX]... [--tolerance=F]\n"
               "                      [--ratio-num=NAME --ratio-den=NAME "
               "--min-ratio=F]...\n"
               "ratio flags repeat; the i-th --ratio-num/--ratio-den/"
               "--min-ratio form one gate\nand every gate is reported "
               "before the exit status is decided\n");
  return 2;
}

std::optional<Value> load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "wb_bench_check: cannot read %s\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  auto v = wb::support::json::parse(buf.str(), error);
  if (!v) {
    std::fprintf(stderr, "wb_bench_check: %s: %s\n", path.c_str(), error.c_str());
  }
  return v;
}

struct Entry {
  std::string name;
  double items_per_second = 0;
};

/// One --ratio-num/--ratio-den/--min-ratio triplet.
struct RatioGate {
  std::string num;
  std::string den;
  double min_ratio = 0;
};

/// All entries of the report that carry an items_per_second counter.
std::vector<Entry> entries_of(const Value& report) {
  std::vector<Entry> out;
  const Value* benches = report.find("benchmarks");
  if (!benches || !benches->is_array()) return out;
  for (const Value& b : benches->as_array()) {
    const Value* name = b.find("name");
    const Value* ips = b.find("items_per_second");
    if (name && name->is_string() && ips && ips->is_number()) {
      out.push_back({name->as_string(), ips->as_double()});
    }
  }
  return out;
}

const Entry* find_entry(const std::vector<Entry>& entries, const std::string& name) {
  for (const Entry& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

/// A baseline snapshot recorded from a debug build makes every floor
/// meaningless (a release current sails over it even after a 10x
/// regression). google-benchmark stamps the build type into the report
/// context; reject anything that is not an optimized build.
bool reject_non_release_baseline(const Value& baseline, const std::string& path) {
  const Value* context = baseline.find("context");
  const Value* build = context ? context->find("library_build_type") : nullptr;
  if (!build || !build->is_string()) return false;  // old snapshot: tolerate
  if (build->as_string() == "release") return false;
  std::fprintf(stderr,
               "wb_bench_check: %s was recorded from a '%s' build; baselines "
               "must come from a release build (re-snapshot with "
               "-DCMAKE_BUILD_TYPE=Release)\n",
               path.c_str(), build->as_string().c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path, current_path;
  std::vector<std::string> families;
  std::vector<std::string> ratio_nums, ratio_dens;
  std::vector<double> min_ratios;
  double tolerance = 0.25;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) { return arg.substr(std::strlen(prefix)); };
    if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = value("--baseline=");
    } else if (arg.rfind("--current=", 0) == 0) {
      current_path = value("--current=");
    } else if (arg.rfind("--family=", 0) == 0) {
      families.push_back(value("--family="));
    } else if (arg.rfind("--tolerance=", 0) == 0) {
      tolerance = std::stod(value("--tolerance="));
    } else if (arg.rfind("--ratio-num=", 0) == 0) {
      ratio_nums.push_back(value("--ratio-num="));
    } else if (arg.rfind("--ratio-den=", 0) == 0) {
      ratio_dens.push_back(value("--ratio-den="));
    } else if (arg.rfind("--min-ratio=", 0) == 0) {
      min_ratios.push_back(std::stod(value("--min-ratio=")));
    } else {
      return usage();
    }
  }
  if (current_path.empty()) return usage();
  if (ratio_nums.size() != ratio_dens.size() ||
      ratio_nums.size() != min_ratios.size()) {
    std::fprintf(stderr,
                 "wb_bench_check: %zu --ratio-num, %zu --ratio-den, %zu "
                 "--min-ratio; the three flags must repeat in lockstep\n",
                 ratio_nums.size(), ratio_dens.size(), min_ratios.size());
    return usage();
  }
  std::vector<RatioGate> gates;
  for (size_t i = 0; i < ratio_nums.size(); ++i) {
    if (min_ratios[i] <= 0) {
      std::fprintf(stderr, "wb_bench_check: --min-ratio must be positive\n");
      return usage();
    }
    gates.push_back({ratio_nums[i], ratio_dens[i], min_ratios[i]});
  }
  if (baseline_path.empty() && gates.empty()) return usage();

  const auto current = load(current_path);
  if (!current) return 2;
  const std::vector<Entry> cur_entries = entries_of(*current);

  int failures = 0;

  if (!baseline_path.empty()) {
    const auto baseline = load(baseline_path);
    if (!baseline) return 2;
    if (reject_non_release_baseline(*baseline, baseline_path)) return 2;
    int compared = 0;
    for (const Entry& base : entries_of(*baseline)) {
      const auto tracked = [&] {
        if (families.empty()) return true;
        for (const std::string& f : families) {
          if (base.name.rfind(f, 0) == 0) return true;
        }
        return false;
      };
      if (!tracked()) continue;
      const Entry* cur = find_entry(cur_entries, base.name);
      if (!cur) {
        std::printf("FAIL %s: missing from %s\n", base.name.c_str(),
                    current_path.c_str());
        ++failures;
        continue;
      }
      ++compared;
      const double floor = base.items_per_second * (1.0 - tolerance);
      const bool ok = cur->items_per_second >= floor;
      std::printf("%s %s: %.3g items/s vs baseline %.3g (floor %.3g)\n",
                  ok ? "ok  " : "FAIL", base.name.c_str(), cur->items_per_second,
                  base.items_per_second, floor);
      if (!ok) ++failures;
    }
    if (compared == 0) {
      std::fprintf(stderr, "wb_bench_check: no tracked benchmarks matched\n");
      return 2;
    }
  }

  // Every gate runs and prints before the exit status is decided: a report
  // with three broken ratios names all three in one run.
  for (const RatioGate& gate : gates) {
    const Entry* num = find_entry(cur_entries, gate.num);
    const Entry* den = find_entry(cur_entries, gate.den);
    if (!num || !den || den->items_per_second <= 0) {
      std::printf("FAIL %s / %s: benchmark missing from %s\n", gate.num.c_str(),
                  gate.den.c_str(), current_path.c_str());
      ++failures;
      continue;
    }
    const double ratio = num->items_per_second / den->items_per_second;
    const bool ok = ratio >= gate.min_ratio;
    std::printf("%s %s / %s = %.2fx (need >= %.2fx)\n", ok ? "ok  " : "FAIL",
                gate.num.c_str(), gate.den.c_str(), ratio, gate.min_ratio);
    if (!ok) ++failures;
  }

  return failures == 0 ? 0 : 1;
}
