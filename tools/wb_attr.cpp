// wb_attr — the cause-attribution matrix runner behind the attr CI gate.
//
// Runs the study matrix with wb::attr cause decomposition and emits
// canonical, sorted, schema-versioned JSON: for every cell (benchmark x
// size x level x browser x platform) the per-cause picosecond vector of
// both web targets, the native cost, and the derived Wasm-vs-native and
// JS-vs-Wasm gaps. The cause lanes of each vector sum to that target's
// cost_ps *exactly* (the tool refuses to emit a document where they do
// not), and the whole run sits on the deterministic virtual clock, so CI
// gates on byte equality just like wb_study:
//
//   wb_attr --out=goldens/attr.json      # regenerate the golden
//   wb_attr --check                      # rerun + diff, exit 1 on drift
//
// Beyond the gate, the tool is the paper-style analysis surface for the
// overhead question ("where does the Wasm-vs-native gap come from?"):
//
//   wb_attr --report                     # per-cause percentage tables
//   wb_attr --report --kernel=2mm        # ... for one kernel
//   wb_attr --folded=attr.folded         # folded stacks for flamegraphs
//
// Usage:
//   wb_attr [--out=goldens/attr.json]
//           [--check] [--golden=goldens/attr.json] [--diff-out=PATH]
//           [--report] [--kernel=NAME] [--folded=PATH]
//           [--sizes=S,M] [--levels=O2,Ofast]
//           [--browsers=Chrome,Firefox,Edge] [--platforms=Desktop]
//           [--toolchain=Cheerp] [--jobs=N] [--no-quicken]
//           [--no-quicken-js] [--no-jit] [--help]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "attr/attr.h"
#include "benchmarks/registry.h"
#include "common.h"
#include "js/quicken.h"
#include "snap/snap.h"
#include "support/cli.h"
#include "support/json.h"
#include "wasm/jit/jit.h"
#include "wasm/quicken.h"

namespace {

using namespace wb;
namespace json = support::json;

constexpr int kSchemaVersion = 1;

const support::CliTool cli(
    "wb_attr",
    "usage: wb_attr [--out=goldens/attr.json]\n"
    "               [--check] [--golden=goldens/attr.json] [--diff-out=PATH]\n"
    "               [--report] [--kernel=NAME] [--folded=PATH]\n"
    "               [--sizes=S,M] [--levels=O2,Ofast]\n"
    "               [--browsers=Chrome,Firefox,Edge] [--platforms=Desktop]\n"
    "               [--toolchain=Cheerp] [--jobs=N]\n"
    "               [--no-quicken] [--no-quicken-js] [--no-jit] [--no-snap]\n"
    "               [--help]\n"
    "environment:\n"
    "  WB_JOBS=N            default for --jobs (the flag wins)\n"
    "  WB_NO_QUICKEN=1      classic Wasm interpreter loop (= --no-quicken)\n"
    "  WB_NO_JS_QUICKEN=1   classic JS switch loop (= --no-quicken-js)\n"
    "  WB_NO_JIT=1          quickened dispatch without the copy-and-patch\n"
    "                       Wasm JIT (= --no-jit; never changes results)\n"
    "  WB_NO_SNAP=1         disable wb::snap snapshot/resume (= --no-snap)\n");

[[noreturn]] void die(const std::string& msg) { cli.die(msg); }

// ------------------------------------------------------------- matrix

struct Matrix {
  std::vector<core::InputSize> sizes = {core::InputSize::S, core::InputSize::M};
  std::vector<ir::OptLevel> levels = {ir::OptLevel::O2, ir::OptLevel::Ofast};
  std::vector<env::Browser> browsers = {env::Browser::Chrome, env::Browser::Firefox,
                                        env::Browser::Edge};
  std::vector<env::Platform> platforms = {env::Platform::Desktop};
  backend::Toolchain toolchain = backend::Toolchain::Cheerp;
};

template <typename T>
T parse_one(const std::string& token, const std::vector<T>& candidates,
            const char* what) {
  for (const T c : candidates) {
    if (token == to_string(c)) return c;
  }
  die(std::string("unknown ") + what + ": " + token);
}

template <typename T>
std::vector<T> parse_list(const std::string& csv, const std::vector<T>& candidates,
                          const char* what) {
  std::vector<T> out;
  std::stringstream ss(csv);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token.empty()) continue;
    out.push_back(parse_one(token, candidates, what));
  }
  if (out.empty()) die(std::string("empty ") + what + " list: " + csv);
  return out;
}

const std::vector<core::InputSize> kSizes(core::kAllSizes.begin(), core::kAllSizes.end());
const std::vector<ir::OptLevel> kLevels = {
    ir::OptLevel::O0, ir::OptLevel::O1, ir::OptLevel::O2,   ir::OptLevel::O3,
    ir::OptLevel::Ofast, ir::OptLevel::Os, ir::OptLevel::Oz};
const std::vector<env::Browser> kBrowsers = {env::Browser::Chrome, env::Browser::Firefox,
                                             env::Browser::Edge};
const std::vector<env::Platform> kPlatforms = {env::Platform::Desktop,
                                               env::Platform::Mobile};
const std::vector<backend::Toolchain> kToolchains = {backend::Toolchain::Cheerp,
                                                     backend::Toolchain::Emscripten};

json::Value matrix_to_json(const Matrix& m) {
  json::Array sizes, levels, browsers, platforms;
  for (const auto s : m.sizes) sizes.emplace_back(core::to_string(s));
  for (const auto l : m.levels) levels.emplace_back(ir::to_string(l));
  for (const auto b : m.browsers) browsers.emplace_back(env::to_string(b));
  for (const auto p : m.platforms) platforms.emplace_back(env::to_string(p));
  json::Object o;
  o.emplace_back("sizes", std::move(sizes));
  o.emplace_back("levels", std::move(levels));
  o.emplace_back("browsers", std::move(browsers));
  o.emplace_back("platforms", std::move(platforms));
  o.emplace_back("toolchain", backend::to_string(m.toolchain));
  return o;
}

Matrix matrix_from_json(const json::Value& v) {
  Matrix m;
  const auto list = [&](const char* key) -> std::vector<std::string> {
    const json::Value* a = v.find(key);
    if (!a || !a->is_array()) die(std::string("golden matrix missing ") + key);
    std::vector<std::string> out;
    for (const auto& e : a->as_array()) out.push_back(e.as_string());
    return out;
  };
  m.sizes.clear();
  for (const auto& s : list("sizes")) m.sizes.push_back(parse_one(s, kSizes, "size"));
  m.levels.clear();
  for (const auto& s : list("levels")) m.levels.push_back(parse_one(s, kLevels, "level"));
  m.browsers.clear();
  for (const auto& s : list("browsers"))
    m.browsers.push_back(parse_one(s, kBrowsers, "browser"));
  m.platforms.clear();
  for (const auto& s : list("platforms"))
    m.platforms.push_back(parse_one(s, kPlatforms, "platform"));
  if (const json::Value* t = v.find("toolchain"))
    m.toolchain = parse_one(t->as_string(), kToolchains, "toolchain");
  return m;
}

// ---------------------------------------------------------------- run

/// One successful cell's attribution data, kept in struct form so the
/// report/folded exporters don't have to re-parse the JSON document.
struct AttrCell {
  std::string benchmark, suite, browser, platform, size, level;
  attr::CauseVec wasm{};
  attr::CauseVec js{};
  uint64_t wasm_cost_ps = 0;
  uint64_t js_cost_ps = 0;
  uint64_t native_cost_ps = 0;

  [[nodiscard]] std::string key() const {
    return benchmark + '|' + browser + '|' + platform + '|' + size + '|' + level;
  }
};

json::Value cause_vec_json(const attr::CauseVec& v) {
  json::Object o;
  for (size_t i = 0; i < attr::kCauseCount; ++i) {
    o.emplace_back(attr::to_string(static_cast<attr::Cause>(i)),
                   static_cast<int64_t>(v[i]));
  }
  return o;
}

json::Value target_json(const attr::CauseVec& v, uint64_t cost_ps) {
  json::Object o;
  o.emplace_back("cost_ps", static_cast<int64_t>(cost_ps));
  o.emplace_back("attr_ps", cause_vec_json(v));
  return o;
}

/// Runs the matrix slice; every cell's lanes are checked to sum to its
/// cost_ps (the wb::attr exactness invariant) before anything is emitted.
std::vector<AttrCell> run_matrix_cells(const Matrix& m,
                                       std::vector<std::string>& failures) {
  std::vector<AttrCell> cells;
  for (const env::Browser browser : m.browsers) {
    for (const env::Platform platform : m.platforms) {
      const env::BrowserEnv browser_env(browser, platform);
      for (const core::InputSize size : m.sizes) {
        for (const ir::OptLevel level : m.levels) {
          env::RunOptions options;
          options.toolchain = m.toolchain;
          std::fprintf(stderr, "running %s/%s %s %s ...\n", env::to_string(browser),
                       env::to_string(platform), core::to_string(size),
                       ir::to_string(level));
          const bench::CorpusResult result = bench::run_corpus_checked(
              size, level, browser_env, options, /*with_native=*/true,
              /*native_fast_math_costs=*/level == ir::OptLevel::Ofast);
          for (const bench::CellFailure& f : result.failures) {
            std::fprintf(stderr, "  cell failed: %s: %s\n", f.benchmark.c_str(),
                         f.error.c_str());
            failures.push_back(f.benchmark + " @ " +
                               std::string(env::to_string(browser)) + "/" +
                               env::to_string(platform) + " " + core::to_string(size) +
                               " " + ir::to_string(level) + ": " + f.error);
          }
          for (const bench::Row& row : result.rows) {
            if (!row.wasm.ok || !row.js.ok || !row.native.ok) continue;
            AttrCell cell;
            cell.benchmark = row.name;
            cell.suite = row.suite;
            cell.browser = env::to_string(browser);
            cell.platform = env::to_string(platform);
            cell.size = core::to_string(size);
            cell.level = ir::to_string(level);
            cell.wasm = row.wasm.attr_ps;
            cell.js = row.js.attr_ps;
            cell.wasm_cost_ps = row.wasm.cost_ps;
            cell.js_cost_ps = row.js.cost_ps;
            cell.native_cost_ps = row.native.cost_ps;
            if (attr::total(cell.wasm) != cell.wasm_cost_ps) {
              die(cell.key() + ": wasm cause lanes sum to " +
                  std::to_string(attr::total(cell.wasm)) + ", cost_ps is " +
                  std::to_string(cell.wasm_cost_ps) + " — exactness invariant broken");
            }
            if (attr::total(cell.js) != cell.js_cost_ps) {
              die(cell.key() + ": js cause lanes sum to " +
                  std::to_string(attr::total(cell.js)) + ", cost_ps is " +
                  std::to_string(cell.js_cost_ps) + " — exactness invariant broken");
            }
            cells.push_back(std::move(cell));
          }
        }
      }
    }
  }
  std::sort(cells.begin(), cells.end(),
            [](const AttrCell& a, const AttrCell& b) { return a.key() < b.key(); });
  return cells;
}

json::Value cells_to_document(const Matrix& m, const std::vector<AttrCell>& cells,
                              const std::vector<std::string>& failures) {
  json::Array cell_array;
  cell_array.reserve(cells.size());
  for (const AttrCell& c : cells) {
    json::Object body;
    body.emplace_back("benchmark", c.benchmark);
    body.emplace_back("suite", c.suite);
    body.emplace_back("browser", c.browser);
    body.emplace_back("platform", c.platform);
    body.emplace_back("size", c.size);
    body.emplace_back("level", c.level);
    body.emplace_back("wasm", target_json(c.wasm, c.wasm_cost_ps));
    body.emplace_back("js", target_json(c.js, c.js_cost_ps));
    json::Object native;
    native.emplace_back("cost_ps", static_cast<int64_t>(c.native_cost_ps));
    body.emplace_back("native", std::move(native));
    // The two gaps the attribution explains (paper Sec. 4.2 / Table 9),
    // signed: Wasm can beat native on no-bounds-check microkernels.
    body.emplace_back("gap_wasm_vs_native_ps",
                      static_cast<int64_t>(c.wasm_cost_ps) -
                          static_cast<int64_t>(c.native_cost_ps));
    body.emplace_back("gap_js_vs_wasm_ps", static_cast<int64_t>(c.js_cost_ps) -
                                               static_cast<int64_t>(c.wasm_cost_ps));
    cell_array.emplace_back(std::move(body));
  }

  json::Object root;
  root.emplace_back("schema_version", kSchemaVersion);
  root.emplace_back("tool", "wb_attr");
  json::Array causes;
  for (size_t i = 0; i < attr::kCauseCount; ++i)
    causes.emplace_back(attr::to_string(static_cast<attr::Cause>(i)));
  root.emplace_back("causes", std::move(causes));
  root.emplace_back("matrix", matrix_to_json(m));
  root.emplace_back("failure_count", static_cast<int64_t>(failures.size()));
  root.emplace_back("cell_count", static_cast<int64_t>(cell_array.size()));
  root.emplace_back("cells", std::move(cell_array));
  return root;
}

// ------------------------------------------------------------- report

double pct(uint64_t part, uint64_t whole) {
  return whole == 0 ? 0.0 : 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}

/// Per-cause percentage tables. With --kernel, per-cell tables for that
/// kernel; otherwise corpus-wide sums per (browser, platform, size,
/// level) combo — the shape of the paper's overhead breakdowns.
void print_report(const std::vector<AttrCell>& cells, const std::string& kernel) {
  struct Group {
    std::string title;
    attr::CauseVec wasm{};
    attr::CauseVec js{};
    uint64_t wasm_ps = 0, js_ps = 0, native_ps = 0;
  };
  std::vector<Group> groups;
  const auto group_for = [&](const std::string& title) -> Group& {
    for (Group& g : groups) {
      if (g.title == title) return g;
    }
    groups.push_back(Group{title, {}, {}, 0, 0, 0});
    return groups.back();
  };
  for (const AttrCell& c : cells) {
    if (!kernel.empty() && c.benchmark != kernel) continue;
    const std::string title =
        kernel.empty()
            ? c.browser + "/" + c.platform + " " + c.size + " " + c.level
            : c.benchmark + " @ " + c.browser + "/" + c.platform + " " + c.size + " " +
                  c.level;
    Group& g = group_for(title);
    attr::accumulate(g.wasm, c.wasm);
    attr::accumulate(g.js, c.js);
    g.wasm_ps += c.wasm_cost_ps;
    g.js_ps += c.js_cost_ps;
    g.native_ps += c.native_cost_ps;
  }
  if (groups.empty()) {
    std::printf("no cells%s\n",
                kernel.empty() ? "" : (" for kernel " + kernel).c_str());
    return;
  }
  for (const Group& g : groups) {
    std::printf("== %s ==\n", g.title.c_str());
    std::printf("  wasm/native %.2fx, js/wasm %.2fx\n",
                g.native_ps ? static_cast<double>(g.wasm_ps) / g.native_ps : 0.0,
                g.wasm_ps ? static_cast<double>(g.js_ps) / g.wasm_ps : 0.0);
    std::printf("  %-14s %12s %6s   %12s %6s\n", "cause", "wasm ps", "%", "js ps", "%");
    for (size_t i = 0; i < attr::kCauseCount; ++i) {
      if (g.wasm[i] == 0 && g.js[i] == 0) continue;
      std::printf("  %-14s %12llu %5.1f%%   %12llu %5.1f%%\n",
                  attr::to_string(static_cast<attr::Cause>(i)),
                  static_cast<unsigned long long>(g.wasm[i]), pct(g.wasm[i], g.wasm_ps),
                  static_cast<unsigned long long>(g.js[i]), pct(g.js[i], g.js_ps));
    }
    std::printf("  %-14s %12llu %5.1f%%   %12llu %5.1f%%\n", "total",
                static_cast<unsigned long long>(g.wasm_ps), 100.0,
                static_cast<unsigned long long>(g.js_ps), 100.0);
  }
}

/// Folded-stack export (flamegraph.pl / speedscope input): one line per
/// (cell, target, cause), frames separated by ';', value in ps.
std::string folded_stacks(const std::vector<AttrCell>& cells) {
  std::string out;
  for (const AttrCell& c : cells) {
    const std::string base = c.browser + "/" + c.platform + ";" + c.benchmark + "/" +
                             c.size + "/" + c.level + ";";
    for (size_t i = 0; i < attr::kCauseCount; ++i) {
      const char* cause = attr::to_string(static_cast<attr::Cause>(i));
      if (c.wasm[i] != 0) {
        out += base + "wasm;" + cause + ' ' + std::to_string(c.wasm[i]) + '\n';
      }
      if (c.js[i] != 0) {
        out += base + "js;" + cause + ' ' + std::to_string(c.js[i]) + '\n';
      }
    }
  }
  return out;
}

// --------------------------------------------------------------- diff

std::string cell_key(const json::Value& cell) {
  const auto field = [&](const char* k) -> std::string {
    const json::Value* v = cell.find(k);
    return v && v->is_string() ? v->as_string() : "?";
  };
  return field("benchmark") + " @ " + field("browser") + "/" + field("platform") +
         " " + field("size") + " " + field("level");
}

void diff_value(const std::string& where, const std::string& path,
                const json::Value& golden, const json::Value& current,
                std::vector<std::string>& out) {
  if (golden.is_object() && current.is_object()) {
    for (const auto& [k, gv] : golden.as_object()) {
      const json::Value* cv = current.find(k);
      const std::string sub = path.empty() ? k : path + "." + k;
      if (!cv) {
        out.push_back(where + ": " + sub + " " + gv.dump() + " -> (missing)");
      } else {
        diff_value(where, sub, gv, *cv, out);
      }
    }
    for (const auto& [k, cv] : current.as_object()) {
      if (!golden.find(k)) {
        const std::string sub = path.empty() ? k : path + "." + k;
        out.push_back(where + ": " + sub + " (missing) -> " + cv.dump());
      }
    }
    return;
  }
  if (golden.dump() != current.dump()) {
    out.push_back(where + ": " + path + " " + golden.dump() + " -> " + current.dump());
  }
}

std::vector<std::string> diff_documents(const json::Value& golden,
                                        const json::Value& current) {
  std::vector<std::string> out;

  const json::Value* gv = golden.find("schema_version");
  const json::Value* cv = current.find("schema_version");
  if (!gv || !cv || gv->dump() != cv->dump()) {
    out.push_back("schema_version mismatch: " + (gv ? gv->dump() : "(none)") +
                  " -> " + (cv ? cv->dump() : "(none)"));
    return out;
  }

  const json::Value* gcells = golden.find("cells");
  const json::Value* ccells = current.find("cells");
  if (!gcells || !gcells->is_array() || !ccells || !ccells->is_array()) {
    out.push_back("malformed document: missing cells array");
    return out;
  }

  std::vector<std::pair<std::string, const json::Value*>> cur;
  for (const auto& c : ccells->as_array()) cur.emplace_back(cell_key(c), &c);

  for (const auto& g : gcells->as_array()) {
    const std::string key = cell_key(g);
    const json::Value* match = nullptr;
    for (const auto& [k, v] : cur) {
      if (k == key) {
        match = v;
        break;
      }
    }
    if (!match) {
      out.push_back(key + ": cell missing from current run");
      continue;
    }
    diff_value(key, "", g, *match, out);
  }
  for (const auto& [k, v] : cur) {
    bool in_golden = false;
    for (const auto& g : gcells->as_array()) in_golden |= cell_key(g) == k;
    if (!in_golden) out.push_back(k + ": cell not present in golden");
  }
  return out;
}

// ----------------------------------------------------------------- io

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) die("cannot read " + path.string());
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::filesystem::path& path, const std::string& content) {
  if (path.has_parent_path()) std::filesystem::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary);
  if (!out) die("cannot write " + path.string());
  out << content;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  bool report = false;
  std::string kernel;
  std::filesystem::path out_path = "goldens/attr.json";
  bool out_flag_seen = false;
  std::filesystem::path golden_path = "goldens/attr.json";
  std::filesystem::path diff_out;
  std::filesystem::path folded_out;
  Matrix matrix;
  bool matrix_flag_seen = false;

  bench::parse_common_flags(argc, argv);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (cli.maybe_help(arg)) {
      // maybe_help exits on match; this branch body is unreachable.
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--report") {
      report = true;
    } else if (arg.rfind("--kernel=", 0) == 0) {
      kernel = value("--kernel=");
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = value("--out=");
      out_flag_seen = true;
    } else if (arg.rfind("--golden=", 0) == 0) {
      golden_path = value("--golden=");
    } else if (arg.rfind("--diff-out=", 0) == 0) {
      diff_out = value("--diff-out=");
    } else if (arg.rfind("--folded=", 0) == 0) {
      folded_out = value("--folded=");
    } else if (arg.rfind("--sizes=", 0) == 0) {
      matrix.sizes = parse_list(value("--sizes="), kSizes, "size");
      matrix_flag_seen = true;
    } else if (arg.rfind("--levels=", 0) == 0) {
      matrix.levels = parse_list(value("--levels="), kLevels, "level");
      matrix_flag_seen = true;
    } else if (arg.rfind("--browsers=", 0) == 0) {
      matrix.browsers = parse_list(value("--browsers="), kBrowsers, "browser");
      matrix_flag_seen = true;
    } else if (arg.rfind("--platforms=", 0) == 0) {
      matrix.platforms = parse_list(value("--platforms="), kPlatforms, "platform");
      matrix_flag_seen = true;
    } else if (arg.rfind("--toolchain=", 0) == 0) {
      matrix.toolchain = parse_one(value("--toolchain="), kToolchains, "toolchain");
      matrix_flag_seen = true;
    } else if (arg.rfind("--jobs=", 0) == 0) {
      // handled by parse_common_flags
    } else if (arg == "--no-quicken") {
      // Bisection escape hatch; attribution (like every observable) must
      // be byte-identical either way.
      wasm::set_quicken_default(false);
    } else if (arg == "--no-quicken-js") {
      js::set_quicken_default(false);
    } else if (arg == "--no-jit") {
      // And for the copy-and-patch Wasm JIT.
      wasm::jit::set_jit_default(false);
    } else if (arg == "--no-snap") {
      snap::set_snap_default(false);
    } else {
      cli.unknown_flag(arg);
    }
  }

  if (!kernel.empty() && benchmarks::find_benchmark(kernel) == nullptr) {
    die("unknown kernel: " + kernel);
  }

  if (check) {
    // Replay the slice recorded in the golden itself, so the gate cannot
    // silently check a narrower slice than was committed.
    if (matrix_flag_seen) {
      std::fprintf(stderr,
                   "note: --check replays the matrix recorded in the golden; "
                   "matrix flags are ignored\n");
    }
    std::string error;
    const std::optional<json::Value> golden = json::parse(read_file(golden_path), error);
    if (!golden) die("golden " + golden_path.string() + " is not valid JSON: " + error);
    const json::Value* gmatrix = golden->find("matrix");
    if (!gmatrix) die("golden has no matrix description");
    const Matrix m = matrix_from_json(*gmatrix);
    std::vector<std::string> failures;
    const std::vector<AttrCell> cells = run_matrix_cells(m, failures);
    const json::Value current = cells_to_document(m, cells, failures);

    const std::vector<std::string> diffs = diff_documents(*golden, current);
    if (diffs.empty()) {
      std::printf("attr golden gate OK: %s cells bit-identical to %s\n",
                  current.find("cell_count")->dump().c_str(),
                  golden_path.string().c_str());
      return 0;
    }
    std::string report_text;
    report_text += "attr golden gate FAILED: " + std::to_string(diffs.size()) +
                   " difference(s) vs " + golden_path.string() + "\n";
    for (const auto& d : diffs) report_text += "  " + d + "\n";
    report_text +=
        "If this change is intentional, regenerate the golden in this PR:\n"
        "  wb_attr --out=" + golden_path.string() + "\n";
    std::fputs(report_text.c_str(), stdout);
    if (!diff_out.empty()) write_file(diff_out, report_text);
    return 1;
  }

  std::vector<std::string> failures;
  const std::vector<AttrCell> cells = run_matrix_cells(matrix, failures);
  if (report) {
    print_report(cells, kernel);
  }
  // JSON is the default product; --report/--folded replace it only when
  // --out was not explicitly requested alongside them.
  if (out_flag_seen || (!report && folded_out.empty())) {
    const json::Value doc = cells_to_document(matrix, cells, failures);
    write_file(out_path, doc.dump(2));
    std::printf("wrote %s (%s cells)\n", out_path.string().c_str(),
                doc.find("cell_count")->dump().c_str());
  }
  if (!folded_out.empty()) {
    write_file(folded_out, folded_stacks(cells));
    std::printf("wrote folded stacks to %s\n", folded_out.string().c_str());
  }
  return failures.empty() ? 0 : 1;
}
