// Differential fuzzing driver. Modes:
//
//   wb_fuzz --runs=N --seed=S [--jobs=J]    random fuzzing
//   wb_fuzz --replay file.c                 re-run one program
//   wb_fuzz --corpus dir/                   replay every .c in a directory
//   wb_fuzz --trace file.wbr3               replay a recorded trace on both
//                                           engines (quickened + classic)
//
// On divergence, the minimized reproducer source (and the WAT dump of its
// -O2 module) is written to --out (default: the working directory) and
// the exit status is 1. Same seed + runs => byte-identical summary.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "backend/wasm_backend.h"
#include "fuzz/fuzz.h"
#include "ir/passes.h"
#include "minic/minic.h"
#include "js/quicken.h"
#include "snap/snap.h"
#include "replay/replay.h"
#include "replay/trace.h"
#include "support/cli.h"
#include "wasm/jit/jit.h"
#include "wasm/quicken.h"
#include "wasm/wat.h"

namespace {

namespace fs = std::filesystem;
using namespace wb;

const support::CliTool cli(
    "wb_fuzz",
    "usage: wb_fuzz [--runs=N] [--seed=S] [--jobs=J] [--out=DIR]\n"
    "               [--mutation-every=N] [--no-minimize] [--plant-bug]\n"
    "               [--no-quicken] [--no-quicken-js] [--no-jit] [--no-snap]\n"
    "               [--replay FILE] [--corpus DIR] [--trace FILE] [--help]\n"
    "environment:\n"
    "  WB_JOBS=N            default for --jobs (the flag wins)\n"
    "  WB_NO_QUICKEN=1      classic Wasm interpreter loop (= --no-quicken)\n"
    "  WB_NO_JS_QUICKEN=1   classic JS switch loop (= --no-quicken-js)\n"
    "  WB_NO_JIT=1          quickened dispatch without the copy-and-patch\n"
    "                       Wasm JIT (= --no-jit; never changes results)\n"
    "  WB_NO_SNAP=1         disable wb::snap snapshot/resume (= --no-snap)\n");

bool parse_u64(const char* s, uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(s, &end, 0);
  return end && *end == '\0' && end != s;
}

std::string read_file(const fs::path& path, bool& ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ok = false;
    return {};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  ok = true;
  return buf.str();
}

/// WAT of the program's -O2 Wasm module, for reproducer triage.
std::string wat_dump(const std::string& source) {
  std::string error;
  auto m = minic::compile(source, {}, error);
  if (!m) return "; frontend error: " + error + "\n";
  const ir::PipelineInfo info = ir::run_pipeline(*m, ir::OptLevel::O2);
  backend::WasmOptions opts;
  opts.fast_math = info.fast_math;
  const auto artifact = backend::compile_to_wasm(std::move(*m), opts);
  if (!artifact.ok()) return "; wasm backend error: " + artifact.error + "\n";
  return wasm::to_wat(artifact.module);
}

int replay_one(const fs::path& path, const fuzz::HarnessOptions& harness) {
  bool ok = false;
  const std::string source = read_file(path, ok);
  if (!ok) {
    std::fprintf(stderr, "wb_fuzz: cannot read %s\n", path.c_str());
    return 2;
  }
  const fuzz::CaseResult result = fuzz::replay_source(source, harness);
  if (result.ok()) {
    std::printf("%s: ok\n", path.c_str());
    return 0;
  }
  std::printf("%s: DIVERGENT\n", path.c_str());
  if (!result.frontend_error.empty()) {
    std::printf("  frontend: %s\n", result.frontend_error.c_str());
  }
  for (const auto& d : result.divergences) {
    std::printf("  %s %s: %s\n", d.level.c_str(), d.engine.c_str(), d.detail.c_str());
  }
  return 1;
}

/// Replays a recorded .wbr3 trace as a differential oracle: the canned-host
/// replay must reproduce the recorded PageMetrics bit-exactly on BOTH the
/// quickened and the classic engines. Recorded traces are engine-neutral
/// observables, so any asymmetry here is a real quickening bug.
int trace_one(const fs::path& path) {
  bool ok = false;
  const std::string bytes = read_file(path, ok);
  if (!ok) {
    std::fprintf(stderr, "wb_fuzz: cannot read %s\n", path.c_str());
    return 2;
  }
  std::string error;
  const auto trace = replay::parse(
      std::vector<uint8_t>(bytes.begin(), bytes.end()), error);
  if (!trace) {
    std::fprintf(stderr, "wb_fuzz: %s is not a trace: %s\n", path.c_str(),
                 error.c_str());
    return 2;
  }
  const bool wasm_q = wasm::quicken_default();
  const bool js_q = js::quicken_default();
  const bool wasm_jit = wasm::jit::jit_default();
  int rc = 0;
  // Replays must be engine-independent: verify on the full JIT stack, on
  // quickened dispatch without it, and on the classic loop.
  struct EngineConfig {
    const char* name;
    bool quicken;
    bool jit;
  };
  for (const EngineConfig& cfg :
       {EngineConfig{"jit", true, true}, EngineConfig{"quickened", true, false},
        EngineConfig{"classic", false, false}}) {
    wasm::set_quicken_default(cfg.quicken);
    js::set_quicken_default(cfg.quicken);
    wasm::jit::set_jit_default(cfg.jit);
    const replay::ReplayResult r = replay::verify(*trace);
    if (!r.ok) {
      std::printf("%s: DIVERGENT (%s engine)\n  %s\n", path.c_str(), cfg.name,
                  r.error.c_str());
      rc = 1;
    }
  }
  wasm::set_quicken_default(wasm_q);
  js::set_quicken_default(js_q);
  wasm::jit::set_jit_default(wasm_jit);
  if (rc == 0) {
    std::printf("%s: ok (%s '%s', %zu events, jit == quickened == classic)\n",
                path.c_str(), replay::to_string(trace->kind),
                trace->name.c_str(), trace->events.size());
  }
  return rc;
}

bool write_text(const fs::path& path, const std::string& text) {
  std::error_code ec;
  if (path.has_parent_path()) fs::create_directories(path.parent_path(), ec);
  std::ofstream out(path, std::ios::binary);
  out << text;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  fuzz::FuzzOptions options;
  options.runs = 100;
  options.seed = 1;
  options.jobs = 1;
  std::string out_dir = ".";
  bool runs_given = false;
  std::vector<fs::path> replays;
  std::vector<fs::path> corpus_dirs;
  std::vector<fs::path> traces;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      return arg.c_str() + std::strlen(prefix);
    };
    uint64_t n = 0;
    if (cli.maybe_help(arg)) {
      // maybe_help exits on match; this branch body is unreachable.
    } else if (arg.rfind("--runs=", 0) == 0 && parse_u64(value("--runs="), n)) {
      options.runs = static_cast<size_t>(n);
      runs_given = true;
    } else if (arg.rfind("--seed=", 0) == 0 && parse_u64(value("--seed="), n)) {
      options.seed = n;
    } else if (arg.rfind("--jobs=", 0) == 0 && parse_u64(value("--jobs="), n)) {
      options.jobs = static_cast<unsigned>(n);
    } else if (arg.rfind("--mutation-every=", 0) == 0 &&
               parse_u64(value("--mutation-every="), n)) {
      options.mutation_every = static_cast<size_t>(n);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_dir = value("--out=");
    } else if (arg == "--no-minimize") {
      options.minimize = false;
    } else if (arg == "--plant-bug") {
      options.harness.plant_wasm_bug = true;
    } else if (arg == "--no-quicken") {
      // Bisection escape hatch: run everything on the classic loop (and
      // skip the now-vacuous quickened-vs-classic oracle).
      wasm::set_quicken_default(false);
    } else if (arg == "--no-quicken-js") {
      // Same escape hatch for the JS VM's quickened threaded engine.
      js::set_quicken_default(false);
    } else if (arg == "--no-jit") {
      // And for the copy-and-patch Wasm JIT (skips the jit oracle).
      wasm::jit::set_jit_default(false);
    } else if (arg == "--no-snap") {
      // And for the wb::snap resume dogfood on replayed traces.
      snap::set_snap_default(false);
    } else if (arg == "--replay" && i + 1 < argc) {
      replays.emplace_back(argv[++i]);
    } else if (arg.rfind("--replay=", 0) == 0) {
      replays.emplace_back(value("--replay="));
    } else if (arg == "--corpus" && i + 1 < argc) {
      corpus_dirs.emplace_back(argv[++i]);
    } else if (arg.rfind("--corpus=", 0) == 0) {
      corpus_dirs.emplace_back(value("--corpus="));
    } else if (arg == "--trace" && i + 1 < argc) {
      traces.emplace_back(argv[++i]);
    } else if (arg.rfind("--trace=", 0) == 0) {
      traces.emplace_back(value("--trace="));
    } else {
      cli.unknown_flag(arg);
    }
  }

  int status = 0;

  for (const auto& dir : corpus_dirs) {
    std::vector<fs::path> files;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      if (entry.path().extension() == ".c") files.push_back(entry.path());
    }
    if (ec) {
      std::fprintf(stderr, "wb_fuzz: cannot list %s: %s\n", dir.c_str(),
                   ec.message().c_str());
      return 2;
    }
    std::sort(files.begin(), files.end());
    std::printf("corpus %s: %zu programs\n", dir.c_str(), files.size());
    for (const auto& file : files) {
      const int rc = replay_one(file, options.harness);
      if (rc > status) status = rc;
    }
  }
  for (const auto& file : replays) {
    const int rc = replay_one(file, options.harness);
    if (rc > status) status = rc;
  }
  for (const auto& file : traces) {
    const int rc = trace_one(file);
    if (rc > status) status = rc;
  }
  // Replay-only unless --runs was asked for explicitly alongside.
  if ((!replays.empty() || !corpus_dirs.empty() || !traces.empty()) &&
      !runs_given) {
    return status;
  }
  if (options.runs == 0) return status;

  const fuzz::FuzzSummary summary = fuzz::run_fuzz(options);
  std::fputs(summary.report().c_str(), stdout);

  for (const auto& repro : summary.reproducers) {
    std::ostringstream stem;
    stem << "repro_case" << repro.case_index << "_seed" << std::hex << repro.case_seed;
    const fs::path src_path = fs::path(out_dir) / (stem.str() + ".c");
    const fs::path wat_path = fs::path(out_dir) / (stem.str() + ".wat");
    if (write_text(src_path, repro.source) &&
        write_text(wat_path, wat_dump(repro.source))) {
      std::printf("wrote %s and %s\n", src_path.c_str(), wat_path.c_str());
    } else {
      std::fprintf(stderr, "wb_fuzz: cannot write reproducer to %s\n",
                   out_dir.c_str());
    }
  }

  return summary.ok() && status == 0 ? 0 : 1;
}
