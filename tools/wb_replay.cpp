// wb_replay — the record-reduce-replay driver (Wasm-R3 on our stack)
// behind the replay CI gate.
//
// Records the replay corpus (the three real-world analogs in both
// implementations, the manually-written JS benchmarks, and the importing
// compiled kernels) through env::BrowserEnv, verifies that every trace
// replays standalone bit-exactly (exact PageMetrics agreement, attr
// lanes included), reduces each trace with the exact oracle, and emits
// canonical, sorted, schema-versioned JSON over the trace identities so
// CI gates on byte equality just like wb_study/wb_fleet/wb_attr:
//
//   wb_replay --out=goldens/replay.json   # regenerate the golden
//   wb_replay --check                     # rerun + diff, exit 1 on drift
//
// Beyond the gate, the tool works on individual .wbr3 trace files:
//
//   wb_replay --record-dir=DIR            # write every corpus trace to DIR
//   wb_replay --replay=FILE               # replay one trace, verify footer
//   wb_replay --reduce=FILE               # shrink it (writes FILE.min.wbr3)
//
// Everything runs on the virtual clock: --jobs only changes wall-clock,
// never a reported byte.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "attr/attr.h"
#include "common.h"
#include "js/quicken.h"
#include "snap/snap.h"
#include "wasm/jit/jit.h"
#include "wasm/quicken.h"
#include "replay/corpus.h"
#include "replay/reduce.h"
#include "replay/replay.h"
#include "replay/trace.h"
#include "support/cli.h"
#include "support/json.h"
#include "support/sha256.h"
#include "support/thread_pool.h"

namespace {

using namespace wb;
namespace json = support::json;

constexpr int kSchemaVersion = 1;

/// ddmin probe bound for corpus-wide reduction. After the dedup stage
/// every surviving canned response is typically queried by the replay, so
/// ddmin mostly confirms minimality; bounding it keeps the gate's probe
/// count (each probe is a full replay) proportional to the small traces.
constexpr size_t kGateDdminLimit = 64;

const support::CliTool cli(
    "wb_replay",
    "usage: wb_replay [--out=goldens/replay.json]\n"
    "                 [--check] [--golden=goldens/replay.json] [--diff-out=PATH]\n"
    "                 [--record-dir=DIR] [--replay=FILE] [--reduce=FILE]\n"
    "                 [--trace-out=PATH] [--ddmin-limit=N] [--jobs=N]\n"
    "                 [--no-quicken] [--no-quicken-js] [--no-jit] [--no-snap]\n"
    "                 [--help]\n"
    "environment:\n"
    "  WB_JOBS=N            default for --jobs (the flag wins)\n"
    "  WB_NO_QUICKEN=1      classic Wasm interpreter loop (= --no-quicken)\n"
    "  WB_NO_JS_QUICKEN=1   classic JS switch loop (= --no-quicken-js)\n"
    "  WB_NO_JIT=1          quickened dispatch without the copy-and-patch\n"
    "                       Wasm JIT (= --no-jit; never changes results)\n"
    "  WB_NO_SNAP=1         disable wb::snap snapshot/resume (= --no-snap)\n");

[[noreturn]] void die(const std::string& msg) { cli.die(msg); }

// ----------------------------------------------------------------- io

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) die("cannot read " + path.string());
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::filesystem::path& path, const std::string& content) {
  if (path.has_parent_path()) std::filesystem::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary);
  if (!out) die("cannot write " + path.string());
  out << content;
}

replay::Trace load_trace(const std::filesystem::path& path) {
  const std::string bytes = read_file(path);
  std::string error;
  auto trace = replay::parse(
      std::span(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size()),
      error);
  if (!trace) die(path.string() + " is not a trace: " + error);
  return std::move(*trace);
}

// ----------------------------------------------------------- document

json::Value metrics_json(const replay::TraceFooter& f) {
  json::Object o;
  o.emplace_back("result", static_cast<int64_t>(f.result));
  o.emplace_back("cost_ps", static_cast<int64_t>(f.cost_ps));
  o.emplace_back("memory_bytes", static_cast<int64_t>(f.memory_bytes));
  o.emplace_back("code_size", static_cast<int64_t>(f.code_size));
  o.emplace_back("ops", static_cast<int64_t>(f.ops));
  o.emplace_back("boundary_crossings", static_cast<int64_t>(f.boundary_crossings));
  if (f.attr_recorded) {
    json::Object lanes;
    for (size_t c = 0; c < attr::kCauseCount; ++c) {
      if (f.attr_ps[c] == 0) continue;
      lanes.emplace_back(attr::to_string(static_cast<attr::Cause>(c)),
                         static_cast<int64_t>(f.attr_ps[c]));
    }
    o.emplace_back("attr_ps", std::move(lanes));
  }
  return o;
}

/// One golden row per corpus trace: the trace identity (digest of the
/// canonical encoding), its reduction, and the recorded metrics the
/// replay reproduced bit-exactly before the row was emitted.
struct RowResult {
  json::Object body;
  std::string error;
};

json::Value build_document(const env::BrowserEnv& browser, int jobs,
                           std::vector<std::string>& errors) {
  const replay::CorpusResult corpus = replay::record_corpus(browser, jobs);
  for (const auto& f : corpus.failures) errors.push_back(f.name + ": " + f.error);

  std::vector<RowResult> rows(corpus.traces.size());
  support::parallel_for(
      corpus.traces.size(),
      static_cast<unsigned>(jobs > 0 ? jobs : bench::effective_jobs()),
      [&](size_t i) {
        const replay::Trace& trace = corpus.traces[i];
        RowResult& row = rows[i];
        const replay::ReplayResult verified = replay::verify(trace);
        if (!verified.ok) {
          row.error = trace.name + ": replay not bit-exact: " + verified.error;
          return;
        }
        const replay::ReduceResult reduced =
            replay::reduce_trace(trace, kGateDdminLimit);
        if (!reduced.ok) {
          row.error = trace.name + ": reduce failed: " + reduced.error;
          return;
        }
        row.body.emplace_back("name", trace.name);
        row.body.emplace_back("kind", replay::to_string(trace.kind));
        row.body.emplace_back("program_sha256",
                              support::sha256_hex(trace.program));
        row.body.emplace_back("trace_digest", replay::digest_hex(trace));
        row.body.emplace_back("trace_bytes",
                              static_cast<int64_t>(reduced.bytes_before));
        row.body.emplace_back("events", static_cast<int64_t>(reduced.events_before));
        row.body.emplace_back("reduced_digest", replay::digest_hex(reduced.reduced));
        row.body.emplace_back("reduced_bytes",
                              static_cast<int64_t>(reduced.bytes_after));
        row.body.emplace_back("reduced_events",
                              static_cast<int64_t>(reduced.events_after));
        row.body.emplace_back("ddmin", reduced.ddmin_ran);
        row.body.emplace_back("metrics", metrics_json(trace.footer));
      });
  json::Array row_array;
  for (RowResult& row : rows) {
    if (!row.error.empty()) {
      errors.push_back(std::move(row.error));
      continue;
    }
    row_array.emplace_back(std::move(row.body));
  }

  json::Object root;
  root.emplace_back("schema_version", kSchemaVersion);
  root.emplace_back("tool", "wb_replay");
  root.emplace_back("browser", env::to_string(browser.profile().browser));
  root.emplace_back("platform", env::to_string(browser.profile().platform));
  root.emplace_back("trace_count", static_cast<int64_t>(row_array.size()));
  root.emplace_back("rows", std::move(row_array));
  return root;
}

// ----------------------------------------------------------------- diff

std::string row_name(const json::Value& row) {
  const json::Value* n = row.find("name");
  return n && n->is_string() ? n->as_string() : "(unnamed)";
}

void diff_value(const std::string& where, const std::string& path,
                const json::Value& golden, const json::Value& current,
                std::vector<std::string>& out) {
  if (golden.is_object() && current.is_object()) {
    for (const auto& [key, gv] : golden.as_object()) {
      const std::string sub = path.empty() ? key : path + "." + key;
      if (const json::Value* cv = current.find(key)) {
        diff_value(where, sub, gv, *cv, out);
      } else {
        out.push_back(where + ": " + sub + " " + gv.dump() + " -> (missing)");
      }
    }
    for (const auto& [key, cv] : current.as_object()) {
      if (!golden.find(key)) {
        const std::string sub = path.empty() ? key : path + "." + key;
        out.push_back(where + ": " + sub + " (missing) -> " + cv.dump());
      }
    }
    return;
  }
  if (golden.dump() != current.dump()) {
    out.push_back(where + ": " + path + " " + golden.dump() + " -> " +
                  current.dump());
  }
}

std::vector<std::string> diff_documents(const json::Value& golden,
                                        const json::Value& current) {
  std::vector<std::string> out;
  const json::Value* gv = golden.find("schema_version");
  const json::Value* cv = current.find("schema_version");
  if (!gv || !cv || gv->dump() != cv->dump()) {
    out.push_back("schema_version mismatch: " + (gv ? gv->dump() : "(none)") +
                  " -> " + (cv ? cv->dump() : "(none)"));
    return out;
  }
  const json::Value* grows = golden.find("rows");
  const json::Value* crows = current.find("rows");
  if (!grows || !grows->is_array() || !crows || !crows->is_array()) {
    out.push_back("malformed document: missing rows array");
    return out;
  }
  for (const auto& g : grows->as_array()) {
    const std::string name = row_name(g);
    const json::Value* match = nullptr;
    for (const auto& c : crows->as_array()) {
      if (row_name(c) == name) {
        match = &c;
        break;
      }
    }
    if (!match) {
      out.push_back(name + ": trace missing from current run");
      continue;
    }
    diff_value(name, "", g, *match, out);
  }
  for (const auto& c : crows->as_array()) {
    bool in_golden = false;
    for (const auto& g : grows->as_array()) in_golden |= row_name(g) == row_name(c);
    if (!in_golden) out.push_back(row_name(c) + ": trace not present in golden");
  }
  return out;
}

// ----------------------------------------------------------------- modes

int record_dir(const env::BrowserEnv& browser, int jobs,
               const std::filesystem::path& dir) {
  const replay::CorpusResult corpus = replay::record_corpus(browser, jobs);
  for (const auto& f : corpus.failures) {
    std::fprintf(stderr, "wb_replay: %s: %s\n", f.name.c_str(), f.error.c_str());
  }
  for (const replay::Trace& trace : corpus.traces) {
    const std::vector<uint8_t> bytes = replay::serialize(trace);
    write_file(dir / (trace.name + ".wbr3"),
               std::string(bytes.begin(), bytes.end()));
  }
  std::printf("wrote %zu trace(s) to %s\n", corpus.traces.size(),
              dir.string().c_str());
  return corpus.ok() ? 0 : 1;
}

int replay_file(const std::filesystem::path& path) {
  const replay::Trace trace = load_trace(path);
  const replay::ReplayResult r = replay::verify(trace);
  if (!r.ok) {
    std::printf("%s: DIVERGENT\n  %s\n", path.c_str(), r.error.c_str());
    return 1;
  }
  std::printf(
      "%s: ok (%s '%s', %zu events)\n"
      "  result=%d cost_ps=%llu memory=%llu code=%llu ops=%llu crossings=%llu\n",
      path.c_str(), replay::to_string(trace.kind), trace.name.c_str(),
      trace.events.size(), r.metrics.result,
      static_cast<unsigned long long>(r.metrics.cost_ps),
      static_cast<unsigned long long>(r.metrics.memory_bytes),
      static_cast<unsigned long long>(r.metrics.code_size),
      static_cast<unsigned long long>(r.metrics.ops),
      static_cast<unsigned long long>(r.metrics.boundary_crossings));
  return 0;
}

int reduce_file(const std::filesystem::path& path,
                std::filesystem::path out_path, size_t ddmin_limit) {
  const replay::Trace trace = load_trace(path);
  const replay::ReduceResult r = replay::reduce_trace(trace, ddmin_limit);
  if (!r.ok) {
    std::printf("%s: cannot reduce\n  %s\n", path.c_str(), r.error.c_str());
    return 1;
  }
  if (out_path.empty()) out_path = path.string() + ".min.wbr3";
  const std::vector<uint8_t> bytes = replay::serialize(r.reduced);
  write_file(out_path, std::string(bytes.begin(), bytes.end()));
  std::printf("%s: %zu -> %zu events, %zu -> %zu bytes (ddmin %s); wrote %s\n",
              path.c_str(), r.events_before, r.events_after, r.bytes_before,
              r.bytes_after, r.ddmin_ran ? "ran" : "skipped",
              out_path.string().c_str());
  return 0;
}

template <typename T>
T parse_enum_name(const std::string& name, const std::vector<T>& candidates,
                  const char* what) {
  for (const T c : candidates) {
    if (name == env::to_string(c)) return c;
  }
  die(std::string("golden has unknown ") + what + ": " + name);
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  std::filesystem::path out_path = "goldens/replay.json";
  bool out_flag_seen = false;
  std::filesystem::path golden_path = "goldens/replay.json";
  std::filesystem::path diff_out;
  std::filesystem::path record_to;
  std::filesystem::path replay_path;
  std::filesystem::path reduce_path;
  std::filesystem::path trace_out;
  size_t ddmin_limit = replay::kDefaultDdminLimit;

  bench::parse_common_flags(argc, argv);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (cli.maybe_help(arg)) {
      // maybe_help exits on match; this branch body is unreachable.
    } else if (arg == "--check") {
      check = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = value("--out=");
      out_flag_seen = true;
    } else if (arg.rfind("--golden=", 0) == 0) {
      golden_path = value("--golden=");
    } else if (arg.rfind("--diff-out=", 0) == 0) {
      diff_out = value("--diff-out=");
    } else if (arg.rfind("--record-dir=", 0) == 0) {
      record_to = value("--record-dir=");
    } else if (arg.rfind("--replay=", 0) == 0) {
      replay_path = value("--replay=");
    } else if (arg.rfind("--reduce=", 0) == 0) {
      reduce_path = value("--reduce=");
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = value("--trace-out=");
    } else if (arg.rfind("--ddmin-limit=", 0) == 0) {
      ddmin_limit = static_cast<size_t>(std::strtoull(value("--ddmin-limit=").c_str(), nullptr, 0));
    } else if (arg.rfind("--jobs=", 0) == 0) {
      // handled by parse_common_flags
    } else if (arg == "--no-quicken") {
      // Bisection escape hatch; replay (like every observable) must be
      // byte-identical either way.
      wasm::set_quicken_default(false);
    } else if (arg == "--no-quicken-js") {
      js::set_quicken_default(false);
    } else if (arg == "--no-jit") {
      // And for the copy-and-patch Wasm JIT.
      wasm::jit::set_jit_default(false);
    } else if (arg == "--no-snap") {
      // And for the wb::snap resume dogfood on the replay path.
      snap::set_snap_default(false);
    } else {
      cli.unknown_flag(arg);
    }
  }

  const int jobs = bench::effective_jobs();
  // The gate corpus records in the canonical deployment cell; provenance
  // is stamped into every trace and checked against the golden.
  env::Browser browser_kind = env::Browser::Chrome;
  env::Platform platform_kind = env::Platform::Desktop;

  if (!replay_path.empty()) return replay_file(replay_path);
  if (!reduce_path.empty()) return reduce_file(reduce_path, trace_out, ddmin_limit);
  if (!record_to.empty()) {
    const env::BrowserEnv browser(browser_kind, platform_kind);
    return record_dir(browser, jobs, record_to);
  }

  if (check) {
    std::string error;
    const std::optional<json::Value> golden =
        json::parse(read_file(golden_path), error);
    if (!golden) die("golden " + golden_path.string() + " is not valid JSON: " + error);
    // Replay the deployment cell recorded in the golden itself.
    const json::Value* gb = golden->find("browser");
    const json::Value* gp = golden->find("platform");
    if (!gb || !gb->is_string() || !gp || !gp->is_string()) {
      die("golden has no browser/platform provenance");
    }
    browser_kind = parse_enum_name(
        gb->as_string(),
        std::vector<env::Browser>{env::Browser::Chrome, env::Browser::Firefox,
                                  env::Browser::Edge},
        "browser");
    platform_kind = parse_enum_name(
        gp->as_string(),
        std::vector<env::Platform>{env::Platform::Desktop, env::Platform::Mobile},
        "platform");
    const env::BrowserEnv browser(browser_kind, platform_kind);
    std::vector<std::string> errors;
    const json::Value current = build_document(browser, jobs, errors);
    for (const auto& e : errors) {
      std::fprintf(stderr, "wb_replay: %s\n", e.c_str());
    }
    std::vector<std::string> diffs = diff_documents(*golden, current);
    if (!errors.empty()) diffs.insert(diffs.begin(), "corpus errors (see stderr)");
    if (diffs.empty()) {
      std::printf("replay golden gate OK: %s traces bit-identical to %s\n",
                  current.find("trace_count")->dump().c_str(),
                  golden_path.string().c_str());
      return 0;
    }
    std::string report_text;
    report_text += "replay golden gate FAILED: " + std::to_string(diffs.size()) +
                   " difference(s) vs " + golden_path.string() + "\n";
    for (const auto& d : diffs) report_text += "  " + d + "\n";
    report_text +=
        "If this change is intentional, regenerate the golden in this PR:\n"
        "  wb_replay --out=" + golden_path.string() + "\n";
    std::fputs(report_text.c_str(), stdout);
    if (!diff_out.empty()) write_file(diff_out, report_text);
    return 1;
  }

  (void)out_flag_seen;
  const env::BrowserEnv browser(browser_kind, platform_kind);
  std::vector<std::string> errors;
  const json::Value doc = build_document(browser, jobs, errors);
  for (const auto& e : errors) {
    std::fprintf(stderr, "wb_replay: %s\n", e.c_str());
  }
  write_file(out_path, doc.dump(2));
  std::printf("wrote %s (%s traces)\n", out_path.string().c_str(),
              doc.find("trace_count")->dump().c_str());
  return errors.empty() ? 0 : 1;
}
