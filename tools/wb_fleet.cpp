// wb_fleet — the browser-fleet traffic simulator behind the fleet golden
// gate.
//
// Simulates --sessions user sessions across a seeded device population
// (browser x platform x CPU/network jitter), a Poisson arrival process
// over the benchmark corpus (zipf-popular modules), and a shared
// compiled-module code cache (--cache-mb; 0 = every load is a cold
// compile). Each distinct workload is built and measured once per browser
// environment on the virtual clock; sessions are then exact integer
// arithmetic, so the report is byte-reproducible: identical across
// --jobs=1/--jobs=N and repeated runs of the same seed.
//
//   wb_fleet --sessions=1000000                # run, print tables + digest
//   wb_fleet --out=goldens/fleet.json          # (re)generate the golden
//   wb_fleet --check                           # replay golden config, diff
//
// --check replays the config recorded in the golden itself and exits 1 on
// any byte difference, writing the line diff to --diff-out if given.
//
// Usage:
//   wb_fleet [--sessions=N] [--devices=N] [--seed=S] [--cache-mb=N]
//            [--jobs=N] [--sizes=XS,S] [--level=O2] [--mean-us=N]
//            [--max-benchmarks=N] [--snapshot] [--out=PATH]
//            [--check] [--golden=goldens/fleet.json] [--diff-out=PATH]
//            [--no-quicken] [--no-quicken-js] [--no-jit] [--no-snap]
//            [--help]
//
// --snapshot prices warm cache hits as wb::snap instance restores
// (bytes-proportional) instead of compiled-module loads + instantiate,
// and reports the warm-start comparison. Changes the report by design.
//
// Environment:
//   WB_JOBS=N            default for --jobs (the flag wins)
//   WB_NO_QUICKEN=1      force the classic Wasm interpreter loop
//                        (same as --no-quicken; never changes results)
//   WB_NO_JS_QUICKEN=1   force the classic JS switch loop
//                        (same as --no-quicken-js; never changes results)
//   WB_NO_JIT=1          force quickened dispatch without the copy-and-
//                        patch Wasm JIT (same as --no-jit; never changes
//                        results)
//   WB_NO_SNAP=1         disable wb::snap snapshot/resume everywhere
//                        (same as --no-snap; never changes results
//                        unless --snapshot asked for snapshot pricing)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "fleet/fleet.h"
#include "js/quicken.h"
#include "snap/snap.h"
#include "support/cli.h"
#include "support/json.h"
#include "wasm/jit/jit.h"
#include "wasm/quicken.h"

namespace {

using namespace wb;
namespace json = support::json;

const support::CliTool cli(
    "wb_fleet",
    "usage: wb_fleet [--sessions=N] [--devices=N] [--seed=S] [--cache-mb=N]\n"
    "                [--jobs=N] [--sizes=XS,S] [--level=O2] [--mean-us=N]\n"
    "                [--max-benchmarks=N] [--replay-modules=N] [--snapshot]\n"
    "                [--out=PATH]\n"
    "                [--check] [--golden=goldens/fleet.json] [--diff-out=PATH]\n"
    "                [--no-quicken] [--no-quicken-js] [--no-jit] [--no-snap]\n"
    "                [--help]\n"
    "  --snapshot           price warm cache hits as wb::snap restores\n"
    "                       (skip compiled-module load + instantiate)\n"
    "environment:\n"
    "  WB_JOBS=N            default for --jobs (the flag wins)\n"
    "  WB_NO_QUICKEN=1      classic Wasm interpreter loop (= --no-quicken)\n"
    "  WB_NO_JS_QUICKEN=1   classic JS switch loop (= --no-quicken-js)\n"
    "  WB_NO_JIT=1          quickened dispatch without the copy-and-patch\n"
    "                       Wasm JIT (= --no-jit; never changes results)\n"
    "  WB_NO_SNAP=1         disable wb::snap snapshot/resume (= --no-snap)\n");

[[noreturn]] void die(const std::string& msg) { cli.die(msg); }

uint64_t parse_u64(const std::string& value, const char* what) {
  char* end = nullptr;
  const uint64_t v = std::strtoull(value.c_str(), &end, 0);
  if (!end || *end != '\0' || end == value.c_str()) {
    die(std::string("bad ") + what + " value: " + value);
  }
  return v;
}

std::vector<core::InputSize> parse_sizes(const std::string& csv) {
  std::vector<core::InputSize> out;
  std::stringstream ss(csv);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token.empty()) continue;
    bool found = false;
    for (const core::InputSize s : core::kAllSizes) {
      if (token == core::to_string(s)) {
        out.push_back(s);
        found = true;
      }
    }
    if (!found) die("unknown size: " + token);
  }
  if (out.empty()) die("empty size list: " + csv);
  return out;
}

ir::OptLevel parse_level(const std::string& token) {
  for (const ir::OptLevel l : {ir::OptLevel::O0, ir::OptLevel::O1, ir::OptLevel::O2,
                               ir::OptLevel::O3, ir::OptLevel::Ofast, ir::OptLevel::Os,
                               ir::OptLevel::Oz}) {
    if (token == ir::to_string(l)) return l;
  }
  die("unknown level: " + token);
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) die("cannot read " + path.string());
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::filesystem::path& path, const std::string& content) {
  if (path.has_parent_path()) std::filesystem::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary);
  if (!out) die("cannot write " + path.string());
  out << content;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::stringstream ss(text);
  std::string line;
  while (std::getline(ss, line)) lines.push_back(line);
  return lines;
}

/// Line-level diff of the two canonical dumps; the report is sorted and
/// schema-stable, so lines align and a plain walk reads well.
std::string diff_reports(const std::string& golden, const std::string& current) {
  const std::vector<std::string> g = split_lines(golden);
  const std::vector<std::string> c = split_lines(current);
  std::string out;
  size_t shown = 0;
  const size_t n = std::max(g.size(), c.size());
  for (size_t i = 0; i < n && shown < 50; ++i) {
    const std::string& gl = i < g.size() ? g[i] : "(missing)";
    const std::string& cl = i < c.size() ? c[i] : "(missing)";
    if (gl == cl) continue;
    out += "  line " + std::to_string(i + 1) + ": " + gl + " -> " + cl + "\n";
    ++shown;
  }
  if (shown == 50) out += "  ... (diff truncated)\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  fleet::FleetConfig config;
  config.sessions = 1'000'000;
  bool check = false;
  std::filesystem::path out_path;
  std::filesystem::path golden_path = "goldens/fleet.json";
  std::filesystem::path diff_out;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (cli.maybe_help(arg)) {
      // maybe_help exits on match; this branch body is unreachable.
    } else if (arg == "--check") {
      check = true;
    } else if (arg.rfind("--sessions=", 0) == 0) {
      config.sessions = parse_u64(value("--sessions="), "--sessions");
    } else if (arg.rfind("--devices=", 0) == 0) {
      config.devices = static_cast<uint32_t>(parse_u64(value("--devices="), "--devices"));
    } else if (arg.rfind("--seed=", 0) == 0) {
      config.seed = parse_u64(value("--seed="), "--seed");
    } else if (arg.rfind("--cache-mb=", 0) == 0) {
      config.cache_mb = parse_u64(value("--cache-mb="), "--cache-mb");
    } else if (arg.rfind("--jobs=", 0) == 0) {
      config.jobs = static_cast<int>(parse_u64(value("--jobs="), "--jobs"));
    } else if (arg.rfind("--sizes=", 0) == 0) {
      config.sizes = parse_sizes(value("--sizes="));
    } else if (arg.rfind("--level=", 0) == 0) {
      config.level = parse_level(value("--level="));
    } else if (arg.rfind("--mean-us=", 0) == 0) {
      config.mean_interarrival_us = parse_u64(value("--mean-us="), "--mean-us");
    } else if (arg.rfind("--max-benchmarks=", 0) == 0) {
      config.max_benchmarks =
          static_cast<uint32_t>(parse_u64(value("--max-benchmarks="), "--max-benchmarks"));
    } else if (arg.rfind("--replay-modules=", 0) == 0) {
      config.replay_modules =
          static_cast<uint32_t>(parse_u64(value("--replay-modules="), "--replay-modules"));
    } else if (arg == "--snapshot") {
      config.snapshot = true;
    } else if (arg == "--no-snap") {
      snap::set_snap_default(false);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = value("--out=");
    } else if (arg.rfind("--golden=", 0) == 0) {
      golden_path = value("--golden=");
    } else if (arg.rfind("--diff-out=", 0) == 0) {
      diff_out = value("--diff-out=");
    } else if (arg == "--no-quicken") {
      wasm::set_quicken_default(false);
    } else if (arg == "--no-quicken-js") {
      js::set_quicken_default(false);
    } else if (arg == "--no-jit") {
      // And for the copy-and-patch Wasm JIT.
      wasm::jit::set_jit_default(false);
    } else {
      cli.unknown_flag(arg);
    }
  }

  if (check) {
    std::string error;
    const std::optional<json::Value> golden =
        json::parse(read_file(golden_path), error);
    if (!golden) die("golden " + golden_path.string() + " is not valid JSON: " + error);
    const json::Value* gconfig = golden->find("config");
    if (!gconfig) die("golden has no config object");
    if (!fleet::config_from_json(*gconfig, config, error)) die(error);

    const fleet::FleetReport report = fleet::run_fleet(config);
    if (!report.ok) die(report.error);
    const std::string golden_dump = golden->dump(2);
    const std::string current_dump = report.doc.dump(2);
    if (golden_dump == current_dump) {
      std::printf("fleet golden gate OK: report bit-identical to %s (digest %s)\n",
                  golden_path.string().c_str(), report.digest.c_str());
      return 0;
    }
    std::string out = "fleet golden gate FAILED vs " + golden_path.string() + "\n";
    out += diff_reports(golden_dump, current_dump);
    out +=
        "If this change is intentional, regenerate the golden in this PR:\n"
        "  wb_fleet --out=" + golden_path.string() + "\n";
    std::fputs(out.c_str(), stdout);
    if (!diff_out.empty()) write_file(diff_out, out + "\ncurrent report:\n" + current_dump);
    return 1;
  }

  const fleet::FleetReport report = fleet::run_fleet(config);
  if (!report.ok) die(report.error);
  std::fputs(report.tables.c_str(), stdout);
  std::printf("\nfleet report digest: %s\n", report.digest.c_str());
  if (!out_path.empty()) {
    write_file(out_path, report.doc.dump(2) + "\n");
    std::printf("wrote %s\n", out_path.string().c_str());
  }
  return 0;
}
