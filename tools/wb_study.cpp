// wb_study — the study matrix runner behind the golden-result CI gate.
//
// Runs a configurable slice of the full study matrix (benchmarks x sizes x
// opt levels x browsers x platforms) and emits canonical, sorted,
// schema-versioned JSON with every reported number per cell: wasm/js
// cost_ps on the exact virtual clock, memory, code size, checksum,
// boundary crossings, op counts, and a SHA-256 of each compiled artifact.
// Because the whole study runs on a deterministic virtual clock, the file
// is byte-reproducible — so CI can gate on *exact* equality:
//
//   wb_study --out=goldens/study.json     # regenerate the golden
//   wb_study --check                      # rerun + diff, exit 1 on drift
//
// --check replays the matrix recorded in the golden itself (so the gate
// cannot silently check a narrower slice than was committed) and prints a
// per-cell diff (benchmark, browser, level, metric, old -> new) for any
// change. A PR that changes any reported number must regenerate the
// golden in the same PR, making result drift reviewable.
//
// Usage:
//   wb_study [--out=goldens/study.json]
//            [--check] [--golden=goldens/study.json] [--diff-out=PATH]
//            [--sizes=S,M] [--levels=O2,Ofast]
//            [--browsers=Chrome,Firefox,Edge] [--platforms=Desktop]
//            [--toolchain=Cheerp] [--with-native] [--attr] [--jobs=N]
//            [--snapshot] [--gc=marksweep|generational]
//            [--no-quicken] [--no-quicken-js] [--no-jit] [--no-snap]
//            [--help]
//
// --snapshot warm-starts every page from a wb::snap instance snapshot
// (decode + instantiate replaced by a modeled bytes-proportional restore
// charge); --gc=generational runs the JS cells under the nursery +
// remembered-set collector with modeled GC pauses. Both change the
// numbers by design, so the committed golden keeps them off.
//
// Environment (see also wb_study --help):
//   WB_JOBS=N            default for --jobs (the flag wins)
//   WB_NO_QUICKEN=1      force the classic Wasm interpreter loop
//                        (same as --no-quicken; never changes results)
//   WB_NO_JS_QUICKEN=1   force the classic JS switch loop
//                        (same as --no-quicken-js; never changes results)
//   WB_NO_JIT=1          force quickened dispatch without the copy-and-
//                        patch Wasm JIT (same as --no-jit; never changes
//                        results)
//   WB_NO_SNAP=1         disable wb::snap snapshot/resume everywhere
//                        (same as --no-snap)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "attr/attr.h"
#include "common.h"
#include "snap/snap.h"
#include "support/cli.h"
#include "support/json.h"
#include "js/quicken.h"
#include "wasm/jit/jit.h"
#include "wasm/quicken.h"

namespace {

using namespace wb;
namespace json = support::json;

constexpr int kSchemaVersion = 1;

/// --attr: include the wb::attr per-cause decomposition in each cell.
/// Off by default so the committed golden stays byte-identical; the full
/// attribution surface (gaps, report, folded stacks) lives in wb_attr.
bool g_with_attr = false;

/// --snapshot / --gc=generational: opt-in page options threaded into
/// every cell's env::RunOptions. Off by default for golden stability.
bool g_snapshot = false;
wb::env::RunOptions::JsGc g_js_gc = wb::env::RunOptions::JsGc::MarkSweep;

const support::CliTool cli(
    "wb_study",
    "usage: wb_study [--out=goldens/study.json]\n"
    "                [--check] [--golden=goldens/study.json] [--diff-out=PATH]\n"
    "                [--sizes=S,M] [--levels=O2,Ofast]\n"
    "                [--browsers=Chrome,Firefox,Edge] [--platforms=Desktop]\n"
    "                [--toolchain=Cheerp] [--with-native] [--attr] [--jobs=N]\n"
    "                [--snapshot] [--gc=marksweep|generational]\n"
    "                [--no-quicken] [--no-quicken-js] [--no-jit] [--no-snap]\n"
    "                [--help]\n"
    "  --snapshot           warm-start pages from wb::snap snapshots\n"
    "  --gc=generational    nursery + remembered-set JS collector\n"
    "environment:\n"
    "  WB_JOBS=N            default for --jobs (the flag wins)\n"
    "  WB_NO_QUICKEN=1      classic Wasm interpreter loop (= --no-quicken)\n"
    "  WB_NO_JS_QUICKEN=1   classic JS switch loop (= --no-quicken-js)\n"
    "  WB_NO_JIT=1          quickened dispatch without the copy-and-patch\n"
    "                       Wasm JIT (= --no-jit; never changes results)\n"
    "  WB_NO_SNAP=1         disable wb::snap snapshot/resume (= --no-snap)\n");

[[noreturn]] void die(const std::string& msg) { cli.die(msg); }

// ------------------------------------------------------------- matrix

struct Matrix {
  std::vector<core::InputSize> sizes = {core::InputSize::S, core::InputSize::M};
  std::vector<ir::OptLevel> levels = {ir::OptLevel::O2, ir::OptLevel::Ofast};
  std::vector<env::Browser> browsers = {env::Browser::Chrome, env::Browser::Firefox,
                                        env::Browser::Edge};
  std::vector<env::Platform> platforms = {env::Platform::Desktop};
  backend::Toolchain toolchain = backend::Toolchain::Cheerp;
  bool with_native = false;
};

template <typename T>
T parse_one(const std::string& token, const std::vector<T>& candidates,
            const char* what) {
  for (const T c : candidates) {
    if (token == to_string(c)) return c;
  }
  die(std::string("unknown ") + what + ": " + token);
}

template <typename T>
std::vector<T> parse_list(const std::string& csv, const std::vector<T>& candidates,
                          const char* what) {
  std::vector<T> out;
  std::stringstream ss(csv);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token.empty()) continue;
    out.push_back(parse_one(token, candidates, what));
  }
  if (out.empty()) die(std::string("empty ") + what + " list: " + csv);
  return out;
}

const std::vector<core::InputSize> kSizes(core::kAllSizes.begin(), core::kAllSizes.end());
const std::vector<ir::OptLevel> kLevels = {
    ir::OptLevel::O0, ir::OptLevel::O1, ir::OptLevel::O2,   ir::OptLevel::O3,
    ir::OptLevel::Ofast, ir::OptLevel::Os, ir::OptLevel::Oz};
const std::vector<env::Browser> kBrowsers = {env::Browser::Chrome, env::Browser::Firefox,
                                             env::Browser::Edge};
const std::vector<env::Platform> kPlatforms = {env::Platform::Desktop,
                                               env::Platform::Mobile};
const std::vector<backend::Toolchain> kToolchains = {backend::Toolchain::Cheerp,
                                                     backend::Toolchain::Emscripten};

json::Value matrix_to_json(const Matrix& m) {
  json::Array sizes, levels, browsers, platforms;
  for (const auto s : m.sizes) sizes.emplace_back(core::to_string(s));
  for (const auto l : m.levels) levels.emplace_back(ir::to_string(l));
  for (const auto b : m.browsers) browsers.emplace_back(env::to_string(b));
  for (const auto p : m.platforms) platforms.emplace_back(env::to_string(p));
  json::Object o;
  o.emplace_back("sizes", std::move(sizes));
  o.emplace_back("levels", std::move(levels));
  o.emplace_back("browsers", std::move(browsers));
  o.emplace_back("platforms", std::move(platforms));
  o.emplace_back("toolchain", backend::to_string(m.toolchain));
  o.emplace_back("with_native", m.with_native);
  return o;
}

Matrix matrix_from_json(const json::Value& v) {
  Matrix m;
  const auto list = [&](const char* key) -> std::vector<std::string> {
    const json::Value* a = v.find(key);
    if (!a || !a->is_array()) die(std::string("golden matrix missing ") + key);
    std::vector<std::string> out;
    for (const auto& e : a->as_array()) out.push_back(e.as_string());
    return out;
  };
  m.sizes.clear();
  for (const auto& s : list("sizes")) m.sizes.push_back(parse_one(s, kSizes, "size"));
  m.levels.clear();
  for (const auto& s : list("levels")) m.levels.push_back(parse_one(s, kLevels, "level"));
  m.browsers.clear();
  for (const auto& s : list("browsers"))
    m.browsers.push_back(parse_one(s, kBrowsers, "browser"));
  m.platforms.clear();
  for (const auto& s : list("platforms"))
    m.platforms.push_back(parse_one(s, kPlatforms, "platform"));
  if (const json::Value* t = v.find("toolchain"))
    m.toolchain = parse_one(t->as_string(), kToolchains, "toolchain");
  if (const json::Value* n = v.find("with_native")) m.with_native = n->as_bool();
  return m;
}

// ---------------------------------------------------------------- run

json::Value page_metrics_json(const env::PageMetrics& m, const std::string& sha) {
  json::Object o;
  o.emplace_back("cost_ps", static_cast<int64_t>(m.cost_ps));
  o.emplace_back("memory_bytes", static_cast<int64_t>(m.memory_bytes));
  o.emplace_back("code_size", static_cast<int64_t>(m.code_size));
  o.emplace_back("result", static_cast<int64_t>(m.result));
  o.emplace_back("ops", static_cast<int64_t>(m.ops));
  o.emplace_back("boundary_crossings", static_cast<int64_t>(m.boundary_crossings));
  o.emplace_back("sha256", sha);
  if (g_with_attr) {
    json::Object a;
    for (size_t i = 0; i < attr::kCauseCount; ++i) {
      a.emplace_back(attr::to_string(static_cast<attr::Cause>(i)),
                     static_cast<int64_t>(m.attr_ps[i]));
    }
    o.emplace_back("attr_ps", std::move(a));
  }
  return o;
}

json::Value native_metrics_json(const core::NativeMetrics& m) {
  json::Object o;
  o.emplace_back("time_ms", m.time_ms);
  o.emplace_back("memory_bytes", static_cast<int64_t>(m.memory_bytes));
  o.emplace_back("code_size", static_cast<int64_t>(m.code_size));
  o.emplace_back("result", static_cast<int64_t>(m.result));
  return o;
}

/// Runs the whole matrix slice and returns the canonical document. Each
/// (size, level, browser, platform) combo fans its 41 cells out across
/// the corpus thread pool; failed cells are recorded, not fatal.
json::Value run_matrix(const Matrix& m) {
  struct Cell {
    std::string key;  ///< sort key: benchmark|browser|platform|size|level
    json::Object body;
  };
  std::vector<Cell> cells;

  for (const env::Browser browser : m.browsers) {
    for (const env::Platform platform : m.platforms) {
      const env::BrowserEnv browser_env(browser, platform);
      for (const core::InputSize size : m.sizes) {
        for (const ir::OptLevel level : m.levels) {
          env::RunOptions options;
          options.toolchain = m.toolchain;
          options.snapshot = g_snapshot;
          options.js_gc = g_js_gc;
          std::fprintf(stderr, "running %s/%s %s %s ...\n", env::to_string(browser),
                       env::to_string(platform), core::to_string(size),
                       ir::to_string(level));
          const bench::CorpusResult result = bench::run_corpus_checked(
              size, level, browser_env, options, m.with_native,
              /*native_fast_math_costs=*/level == ir::OptLevel::Ofast);
          std::vector<std::pair<std::string, std::string>> combo_errors;
          for (const bench::CellFailure& f : result.failures) {
            std::fprintf(stderr, "  cell failed: %s: %s\n", f.benchmark.c_str(),
                         f.error.c_str());
            combo_errors.emplace_back(f.benchmark, f.error);
          }
          for (const bench::Row& row : result.rows) {
            Cell cell;
            cell.key = row.name + '|' + env::to_string(browser) + '|' +
                       env::to_string(platform) + '|' + core::to_string(size) + '|' +
                       ir::to_string(level);
            cell.body.emplace_back("benchmark", row.name);
            cell.body.emplace_back("suite", row.suite);
            cell.body.emplace_back("browser", env::to_string(browser));
            cell.body.emplace_back("platform", env::to_string(platform));
            cell.body.emplace_back("size", core::to_string(size));
            cell.body.emplace_back("level", ir::to_string(level));
            if (row.wasm.ok && row.js.ok && (!m.with_native || row.native.ok)) {
              cell.body.emplace_back("status", "ok");
              cell.body.emplace_back("wasm",
                                     page_metrics_json(row.wasm, row.wasm_sha256));
              cell.body.emplace_back("js", page_metrics_json(row.js, row.js_sha256));
              if (m.with_native)
                cell.body.emplace_back("native", native_metrics_json(row.native));
            } else {
              cell.body.emplace_back("status", "failed");
              for (const auto& [name, message] : combo_errors) {
                if (name == row.name) cell.body.emplace_back("error", message);
              }
            }
            cells.push_back(std::move(cell));
          }
        }
      }
    }
  }

  std::sort(cells.begin(), cells.end(),
            [](const Cell& a, const Cell& b) { return a.key < b.key; });

  json::Array cell_array;
  cell_array.reserve(cells.size());
  for (Cell& c : cells) cell_array.emplace_back(std::move(c.body));

  json::Object root;
  root.emplace_back("schema_version", kSchemaVersion);
  root.emplace_back("tool", "wb_study");
  root.emplace_back("matrix", matrix_to_json(m));
  root.emplace_back("cell_count", static_cast<int64_t>(cell_array.size()));
  root.emplace_back("cells", std::move(cell_array));
  return root;
}

// --------------------------------------------------------------- diff

std::string cell_key(const json::Value& cell) {
  const auto field = [&](const char* k) -> std::string {
    const json::Value* v = cell.find(k);
    return v && v->is_string() ? v->as_string() : "?";
  };
  return field("benchmark") + " @ " + field("browser") + "/" + field("platform") +
         " " + field("size") + " " + field("level");
}

void diff_value(const std::string& where, const std::string& path,
                const json::Value& golden, const json::Value& current,
                std::vector<std::string>& out) {
  const auto leaf = [&](const std::string& old_repr, const std::string& new_repr) {
    out.push_back(where + ": " + path + " " + old_repr + " -> " + new_repr);
  };
  if (golden.is_object() && current.is_object()) {
    for (const auto& [k, gv] : golden.as_object()) {
      const json::Value* cv = current.find(k);
      const std::string sub = path.empty() ? k : path + "." + k;
      if (!cv) {
        out.push_back(where + ": " + sub + " " + gv.dump() + " -> (missing)");
      } else {
        diff_value(where, sub, gv, *cv, out);
      }
    }
    for (const auto& [k, cv] : current.as_object()) {
      if (!golden.find(k)) {
        const std::string sub = path.empty() ? k : path + "." + k;
        out.push_back(where + ": " + sub + " (missing) -> " + cv.dump());
      }
    }
    return;
  }
  if (golden.dump() != current.dump()) leaf(golden.dump(), current.dump());
}

/// Compares golden vs current per cell. Returns the human-readable diff
/// lines; empty means the gate passes.
std::vector<std::string> diff_documents(const json::Value& golden,
                                        const json::Value& current) {
  std::vector<std::string> out;

  const json::Value* gv = golden.find("schema_version");
  const json::Value* cv = current.find("schema_version");
  if (!gv || !cv || gv->dump() != cv->dump()) {
    out.push_back("schema_version mismatch: " + (gv ? gv->dump() : "(none)") +
                  " -> " + (cv ? cv->dump() : "(none)"));
    return out;
  }

  const json::Value* gcells = golden.find("cells");
  const json::Value* ccells = current.find("cells");
  if (!gcells || !gcells->is_array() || !ccells || !ccells->is_array()) {
    out.push_back("malformed document: missing cells array");
    return out;
  }

  std::vector<std::pair<std::string, const json::Value*>> cur;
  for (const auto& c : ccells->as_array()) cur.emplace_back(cell_key(c), &c);

  for (const auto& g : gcells->as_array()) {
    const std::string key = cell_key(g);
    const json::Value* match = nullptr;
    for (const auto& [k, v] : cur) {
      if (k == key) {
        match = v;
        break;
      }
    }
    if (!match) {
      out.push_back(key + ": cell missing from current run");
      continue;
    }
    diff_value(key, "", g, *match, out);
  }
  for (const auto& [k, v] : cur) {
    bool in_golden = false;
    for (const auto& g : gcells->as_array()) in_golden |= cell_key(g) == k;
    if (!in_golden) out.push_back(k + ": cell not present in golden");
  }
  return out;
}

// ----------------------------------------------------------------- io

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) die("cannot read " + path.string());
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::filesystem::path& path, const std::string& content) {
  if (path.has_parent_path()) std::filesystem::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary);
  if (!out) die("cannot write " + path.string());
  out << content;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  std::filesystem::path out_path = "goldens/study.json";
  std::filesystem::path golden_path = "goldens/study.json";
  std::filesystem::path diff_out;
  Matrix matrix;
  bool matrix_flag_seen = false;

  bench::parse_common_flags(argc, argv);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (cli.maybe_help(arg)) {
      // maybe_help exits on match; this branch body is unreachable.
    } else if (arg == "--check") {
      check = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = value("--out=");
    } else if (arg.rfind("--golden=", 0) == 0) {
      golden_path = value("--golden=");
    } else if (arg.rfind("--diff-out=", 0) == 0) {
      diff_out = value("--diff-out=");
    } else if (arg.rfind("--sizes=", 0) == 0) {
      matrix.sizes = parse_list(value("--sizes="), kSizes, "size");
      matrix_flag_seen = true;
    } else if (arg.rfind("--levels=", 0) == 0) {
      matrix.levels = parse_list(value("--levels="), kLevels, "level");
      matrix_flag_seen = true;
    } else if (arg.rfind("--browsers=", 0) == 0) {
      matrix.browsers = parse_list(value("--browsers="), kBrowsers, "browser");
      matrix_flag_seen = true;
    } else if (arg.rfind("--platforms=", 0) == 0) {
      matrix.platforms = parse_list(value("--platforms="), kPlatforms, "platform");
      matrix_flag_seen = true;
    } else if (arg.rfind("--toolchain=", 0) == 0) {
      matrix.toolchain = parse_one(value("--toolchain="), kToolchains, "toolchain");
      matrix_flag_seen = true;
    } else if (arg == "--with-native") {
      matrix.with_native = true;
      matrix_flag_seen = true;
    } else if (arg == "--attr") {
      g_with_attr = true;
    } else if (arg == "--snapshot") {
      g_snapshot = true;
    } else if (arg.rfind("--gc=", 0) == 0) {
      const std::string mode = value("--gc=");
      if (mode == "marksweep") {
        g_js_gc = env::RunOptions::JsGc::MarkSweep;
      } else if (mode == "generational") {
        g_js_gc = env::RunOptions::JsGc::Generational;
      } else {
        die("unknown --gc mode: " + mode);
      }
    } else if (arg == "--no-snap") {
      snap::set_snap_default(false);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      // handled by parse_common_flags
    } else if (arg == "--no-quicken") {
      // Bisection escape hatch: run the study on the classic interpreter
      // loop. Results must be byte-identical either way; only wall clock
      // differs.
      wasm::set_quicken_default(false);
    } else if (arg == "--no-quicken-js") {
      // Same escape hatch for the JS VM's quickened threaded engine.
      js::set_quicken_default(false);
    } else if (arg == "--no-jit") {
      // And for the copy-and-patch Wasm JIT (falls back to quickened
      // dispatch; WB_NO_JIT=1 is the env equivalent).
      wasm::jit::set_jit_default(false);
    } else {
      cli.unknown_flag(arg);
    }
  }

  if (!check) {
    const json::Value doc = run_matrix(matrix);
    write_file(out_path, doc.dump(2));
    std::printf("wrote %s (%s cells)\n", out_path.string().c_str(),
                doc.find("cell_count")->dump().c_str());
    return 0;
  }

  // --check: replay the slice recorded in the golden itself.
  if (matrix_flag_seen) {
    std::fprintf(stderr,
                 "note: --check replays the matrix recorded in the golden; "
                 "matrix flags are ignored\n");
  }
  std::string error;
  const std::optional<json::Value> golden = json::parse(read_file(golden_path), error);
  if (!golden) die("golden " + golden_path.string() + " is not valid JSON: " + error);
  const json::Value* gmatrix = golden->find("matrix");
  if (!gmatrix) die("golden has no matrix description");
  const json::Value current = run_matrix(matrix_from_json(*gmatrix));

  const std::vector<std::string> diffs = diff_documents(*golden, current);
  if (diffs.empty()) {
    std::printf("golden gate OK: %s cells bit-identical to %s\n",
                current.find("cell_count")->dump().c_str(),
                golden_path.string().c_str());
    return 0;
  }
  std::string report;
  report += "golden gate FAILED: " + std::to_string(diffs.size()) +
            " difference(s) vs " + golden_path.string() + "\n";
  for (const auto& d : diffs) report += "  " + d + "\n";
  report +=
      "If this change is intentional, regenerate the golden in this PR:\n"
      "  wb_study --out=" + golden_path.string() + "\n";
  std::fputs(report.c_str(), stdout);
  if (!diff_out.empty()) write_file(diff_out, report);
  return 1;
}
